// Genetic-algorithm scheduler — an extension baseline.
//
// The paper's related-work section cites suboptimal offloading methods built
// on hierarchical genetic algorithms and particle-swarm optimization [33].
// This scheduler provides that family as a comparator: a steady-state GA
// over offloading decisions with
//   * genes        — per-user slot (server, sub-channel) or "local",
//   * crossover    — uniform per-user gene mix with first-fit repair of
//                    slot collisions (constraint 12d),
//   * mutation     — one Algorithm-2 neighborhood step,
//   * selection    — tournament of configurable size, elitist replacement.
//
// Not part of the paper's evaluated schemes; used by the ablation bench to
// position TSAJS against a population-based heuristic of similar budget.
#pragma once

#include "algo/neighborhood.h"
#include "algo/scheduler.h"

namespace tsajs::algo {

struct GeneticConfig {
  std::size_t population = 24;
  std::size_t generations = 120;
  std::size_t tournament = 3;
  double crossover_prob = 0.9;
  double mutation_prob = 0.35;
  /// Elites copied unchanged into the next generation.
  std::size_t elites = 2;
  /// Offload probability of the random initial population.
  double initial_offload_prob = 0.25;
  NeighborhoodConfig neighborhood;

  void validate() const;
};

class GeneticScheduler final : public Scheduler {
 public:

  explicit GeneticScheduler(GeneticConfig config = {});

  [[nodiscard]] std::string name() const override { return "genetic"; }
  [[nodiscard]] ScheduleResult solve(
      const SolveRequest& request) const override;

 private:
  GeneticConfig config_;
};

}  // namespace tsajs::algo
