#include "algo/pso.h"

#include <vector>

#include "common/error.h"

namespace tsajs::algo {

void PsoConfig::validate() const {
  TSAJS_REQUIRE(particles >= 2, "need at least two particles");
  TSAJS_REQUIRE(iterations >= 1, "need at least one iteration");
  TSAJS_REQUIRE(c1 >= 0.0 && c1 <= 1.0, "c1 must lie in [0,1]");
  TSAJS_REQUIRE(c2 >= 0.0 && c2 <= 1.0, "c2 must lie in [0,1]");
  TSAJS_REQUIRE(c1 + c2 <= 1.0, "c1 + c2 must not exceed 1");
  TSAJS_REQUIRE(initial_offload_prob >= 0.0 && initial_offload_prob <= 1.0,
                "initial offload probability must lie in [0,1]");
  neighborhood.validate();
}

PsoScheduler::PsoScheduler(PsoConfig config) : config_(config) {
  config_.validate();
}

namespace {

// Copies user `u`'s gene (slot or local) from `source` into `target`,
// repairing slot collisions first-fit on the same server.
void copy_gene(const mec::Scenario& /*scenario*/, const jtora::Assignment& source,
               jtora::Assignment& target, std::size_t u, Rng& rng) {
  const auto slot = source.slot_of(u);
  if (!slot.has_value()) {
    target.make_local(u);
    return;
  }
  if (const auto occupant = target.occupant(slot->server, slot->subchannel);
      !occupant.has_value() || *occupant == u) {
    target.offload(u, slot->server, slot->subchannel);
    return;
  }
  if (const auto j = target.random_free_subchannel(slot->server, rng);
      j.has_value()) {
    target.offload(u, slot->server, *j);
    return;
  }
  target.make_local(u);
}

}  // namespace

ScheduleResult PsoScheduler::solve(const SolveRequest& request) const {
  request.validate();
  const jtora::CompiledProblem& problem = *request.problem;
  Rng& rng = *request.rng;

  const mec::Scenario& scenario = problem.scenario();
  const jtora::UtilityEvaluator evaluator(problem);
  const Neighborhood neighborhood(scenario, config_.neighborhood);
  std::size_t evaluations = 0;

  struct Particle {
    jtora::Assignment position;
    jtora::Assignment personal_best;
    double best_utility;
  };

  std::vector<Particle> swarm;
  swarm.reserve(config_.particles);
  std::size_t global_best = 0;
  for (std::size_t i = 0; i < config_.particles; ++i) {
    jtora::Assignment start = random_feasible_assignment(
        scenario, rng, config_.initial_offload_prob);
    const double utility = evaluator.system_utility(start);
    ++evaluations;
    swarm.push_back({start, start, utility});
    if (utility > swarm[global_best].best_utility) global_best = i;
  }

  for (std::size_t it = 0; it < config_.iterations; ++it) {
    for (std::size_t i = 0; i < swarm.size(); ++i) {
      Particle& particle = swarm[i];
      // Recombination toward personal and global bests.
      for (std::size_t u = 0; u < scenario.num_users(); ++u) {
        const double draw = rng.uniform();
        if (draw < config_.c1) {
          copy_gene(scenario, particle.personal_best, particle.position, u,
                    rng);
        } else if (draw < config_.c1 + config_.c2) {
          copy_gene(scenario, swarm[global_best].personal_best,
                    particle.position, u, rng);
        }
      }
      // Exploration.
      for (std::size_t m = 0; m < config_.mutation_steps; ++m) {
        neighborhood.step(particle.position, rng);
      }
      const double utility = evaluator.system_utility(particle.position);
      ++evaluations;
      if (utility > particle.best_utility) {
        particle.best_utility = utility;
        particle.personal_best = particle.position;
        if (utility > swarm[global_best].best_utility) global_best = i;
      }
    }
  }

  const Particle& winner = swarm[global_best];
  return ScheduleResult{winner.personal_best, winner.best_utility, 0.0,
                        evaluations};
}

}  // namespace tsajs::algo
