#include "algo/local_search.h"

#include <utility>

#include "common/error.h"

namespace tsajs::algo {

void LocalSearchConfig::validate() const {
  TSAJS_REQUIRE(max_iterations >= 1, "need at least one iteration");
  TSAJS_REQUIRE(patience >= 1, "patience must be at least 1");
  TSAJS_REQUIRE(initial_offload_prob >= 0.0 && initial_offload_prob <= 1.0,
                "initial offload probability must lie in [0,1]");
  neighborhood.validate();
}

LocalSearchScheduler::LocalSearchScheduler(LocalSearchConfig config)
    : config_(config) {
  config_.validate();
}

ScheduleResult LocalSearchScheduler::schedule(const mec::Scenario& scenario,
                                              Rng& rng) const {
  return climb(scenario,
               random_feasible_assignment(scenario, rng,
                                          config_.initial_offload_prob),
               rng);
}

ScheduleResult LocalSearchScheduler::schedule_from(
    const mec::Scenario& scenario, const jtora::Assignment& hint,
    Rng& rng) const {
  return climb(scenario, repair_hint(scenario, hint), rng);
}

ScheduleResult LocalSearchScheduler::climb(const mec::Scenario& scenario,
                                           jtora::Assignment initial,
                                           Rng& rng) const {
  const jtora::UtilityEvaluator evaluator(scenario);
  const Neighborhood neighborhood(scenario, config_.neighborhood);

  jtora::Assignment current = std::move(initial);
  double current_utility = evaluator.system_utility(current);
  ScheduleResult result{current, current_utility, 0.0, 1};

  std::size_t since_improvement = 0;
  for (std::size_t it = 0; it < config_.max_iterations; ++it) {
    jtora::Assignment candidate = current;
    neighborhood.step(candidate, rng);
    const double candidate_utility = evaluator.system_utility(candidate);
    ++result.evaluations;
    if (candidate_utility > current_utility) {
      current = std::move(candidate);
      current_utility = candidate_utility;
      since_improvement = 0;
    } else if (++since_improvement >= config_.patience) {
      break;
    }
  }
  result.assignment = std::move(current);
  result.system_utility = current_utility;
  return result;
}

}  // namespace tsajs::algo
