#include "algo/local_search.h"

#include <utility>

#include "common/error.h"

namespace tsajs::algo {

void LocalSearchConfig::validate() const {
  TSAJS_REQUIRE(max_iterations >= 1, "need at least one iteration");
  TSAJS_REQUIRE(patience >= 1, "patience must be at least 1");
  TSAJS_REQUIRE(initial_offload_prob >= 0.0 && initial_offload_prob <= 1.0,
                "initial offload probability must lie in [0,1]");
  neighborhood.validate();
}

LocalSearchScheduler::LocalSearchScheduler(LocalSearchConfig config)
    : config_(config) {
  config_.validate();
}

ScheduleResult LocalSearchScheduler::solve(const SolveRequest& request) const {
  request.validate();
  const jtora::CompiledProblem& problem = *request.problem;
  Rng& rng = *request.rng;
  if (request.hint != nullptr) {
    return climb(problem, repair_hint(problem.scenario(), *request.hint), rng);
  }
  return climb(problem,
               random_feasible_assignment(problem.scenario(), rng,
                                          config_.initial_offload_prob),
               rng);
}

ScheduleResult LocalSearchScheduler::climb(
    const jtora::CompiledProblem& problem, jtora::Assignment initial,
    Rng& rng) const {
  const jtora::UtilityEvaluator evaluator(problem);
  const Neighborhood neighborhood(problem.scenario(), config_.neighborhood);

  jtora::Assignment current = std::move(initial);
  double current_utility = evaluator.system_utility(current);
  ScheduleResult result{current, current_utility, 0.0, 1};

  std::size_t since_improvement = 0;
  for (std::size_t it = 0; it < config_.max_iterations; ++it) {
    jtora::Assignment candidate = current;
    neighborhood.step(candidate, rng);
    const double candidate_utility = evaluator.system_utility(candidate);
    ++result.evaluations;
    if (candidate_utility > current_utility) {
      current = std::move(candidate);
      current_utility = candidate_utility;
      since_improvement = 0;
    } else if (++since_improvement >= config_.patience) {
      break;
    }
  }
  result.assignment = std::move(current);
  result.system_utility = current_utility;
  return result;
}

}  // namespace tsajs::algo
