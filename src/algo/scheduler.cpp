#include "algo/scheduler.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/stopwatch.h"

namespace tsajs::algo {

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const mec::Scenario& scenario, Rng& rng) {
  Stopwatch timer;
  ScheduleResult result = scheduler.schedule(scenario, rng);
  result.solve_seconds = timer.elapsed_seconds();

  result.assignment.check_consistency();
  const jtora::UtilityEvaluator evaluator(scenario);
  const double recomputed = evaluator.system_utility(result.assignment);
  const double tolerance =
      1e-6 * std::max(1.0, std::fabs(recomputed)) + 1e-9;
  TSAJS_CHECK(std::fabs(recomputed - result.system_utility) <= tolerance,
              "scheduler-reported utility disagrees with evaluator (" +
                  scheduler.name() + ")");
  return result;
}

jtora::Assignment random_feasible_assignment(const mec::Scenario& scenario,
                                             Rng& rng, double offload_prob) {
  TSAJS_REQUIRE(offload_prob >= 0.0 && offload_prob <= 1.0,
                "offload probability must lie in [0,1]");
  jtora::Assignment x(scenario);
  for (std::size_t u = 0; u < scenario.num_users(); ++u) {
    if (!rng.bernoulli(offload_prob)) continue;
    // Pick among servers that still have a free sub-channel.
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < scenario.num_servers(); ++s) {
      if (!x.free_subchannels(s).empty()) candidates.push_back(s);
    }
    if (candidates.empty()) continue;
    const std::size_t s = candidates[rng.uniform_index(candidates.size())];
    const auto j = x.random_free_subchannel(s, rng);
    TSAJS_CHECK(j.has_value(), "candidate server must have a free channel");
    x.offload(u, s, *j);
  }
  return x;
}

}  // namespace tsajs::algo
