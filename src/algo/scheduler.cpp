#include "algo/scheduler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/stopwatch.h"

namespace tsajs::algo {

namespace {

// Shared post-conditions of every solve: consistent assignment, and the
// scheduler-reported utility must agree with an independent evaluation.
// The evaluator binds the already-compiled problem, so the guard costs no
// table rebuild.
void validate_result(const Scheduler& scheduler,
                     const jtora::CompiledProblem& problem,
                     const ScheduleResult& result) {
  result.assignment.check_consistency();
  const jtora::UtilityEvaluator evaluator(problem);
  const double recomputed = evaluator.system_utility(result.assignment);
  const double tolerance =
      1e-6 * std::max(1.0, std::fabs(recomputed)) + 1e-9;
  TSAJS_CHECK(std::fabs(recomputed - result.system_utility) <= tolerance,
              "scheduler-reported utility disagrees with evaluator (" +
                  scheduler.name() + ")");
}

}  // namespace

ScheduleResult Scheduler::schedule(const mec::Scenario& scenario,
                                   Rng& rng) const {
  const jtora::CompiledProblem problem(scenario);
  return schedule(problem, rng);
}

ScheduleResult WarmStartable::schedule_from(const mec::Scenario& scenario,
                                            const jtora::Assignment& hint,
                                            Rng& rng) const {
  const jtora::CompiledProblem problem(scenario);
  return schedule_from(problem, hint, rng);
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const jtora::CompiledProblem& problem,
                                Rng& rng) {
  Stopwatch timer;
  ScheduleResult result = scheduler.schedule(problem, rng);
  result.solve_seconds = timer.elapsed_seconds();
  validate_result(scheduler, problem, result);
  return result;
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const jtora::CompiledProblem& problem,
                                const jtora::Assignment& hint, Rng& rng) {
  Stopwatch timer;
  const auto* warm = dynamic_cast<const WarmStartable*>(&scheduler);
  ScheduleResult result = warm != nullptr
                              ? warm->schedule_from(problem, hint, rng)
                              : scheduler.schedule(problem, rng);
  result.solve_seconds = timer.elapsed_seconds();
  validate_result(scheduler, problem, result);
  return result;
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const mec::Scenario& scenario, Rng& rng) {
  // Compiled inside the timed region so one-shot callers keep the historic
  // "solve time includes setup" accounting.
  Stopwatch timer;
  const jtora::CompiledProblem problem(scenario);
  ScheduleResult result = scheduler.schedule(problem, rng);
  result.solve_seconds = timer.elapsed_seconds();
  validate_result(scheduler, problem, result);
  return result;
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const mec::Scenario& scenario,
                                const jtora::Assignment& hint, Rng& rng) {
  Stopwatch timer;
  const jtora::CompiledProblem problem(scenario);
  const auto* warm = dynamic_cast<const WarmStartable*>(&scheduler);
  ScheduleResult result = warm != nullptr
                              ? warm->schedule_from(problem, hint, rng)
                              : scheduler.schedule(problem, rng);
  result.solve_seconds = timer.elapsed_seconds();
  validate_result(scheduler, problem, result);
  return result;
}

jtora::Assignment repair_hint(const mec::Scenario& scenario,
                              const jtora::Assignment& hint) {
  jtora::Assignment x(scenario);
  const std::size_t users =
      std::min(scenario.num_users(), hint.num_users());
  for (std::size_t u = 0; u < users; ++u) {
    const auto slot = hint.slot_of(u);
    if (!slot.has_value()) continue;
    if (slot->server >= scenario.num_servers() ||
        slot->subchannel >= scenario.num_subchannels()) {
      continue;  // the slot no longer exists; the user re-enters local
    }
    if (x.occupant(slot->server, slot->subchannel).has_value()) {
      continue;  // first-come (lowest user index) keeps a contested slot
    }
    x.offload(u, slot->server, slot->subchannel);
  }
  return x;
}

jtora::Assignment random_feasible_assignment(const mec::Scenario& scenario,
                                             Rng& rng, double offload_prob) {
  TSAJS_REQUIRE(offload_prob >= 0.0 && offload_prob <= 1.0,
                "offload probability must lie in [0,1]");
  jtora::Assignment x(scenario);
  for (std::size_t u = 0; u < scenario.num_users(); ++u) {
    if (!rng.bernoulli(offload_prob)) continue;
    // Pick among servers that still have a free sub-channel.
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < scenario.num_servers(); ++s) {
      if (!x.free_subchannels(s).empty()) candidates.push_back(s);
    }
    if (candidates.empty()) continue;
    const std::size_t s = candidates[rng.uniform_index(candidates.size())];
    const auto j = x.random_free_subchannel(s, rng);
    TSAJS_CHECK(j.has_value(), "candidate server must have a free channel");
    x.offload(u, s, *j);
  }
  return x;
}

}  // namespace tsajs::algo
