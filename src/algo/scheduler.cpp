#include "algo/scheduler.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/stopwatch.h"

namespace tsajs::algo {

void SolveBudget::validate() const {
  // Negative deadlines are legal ("already expired" — the solve degrades to
  // the all-local floor at its first safe boundary); only NaN/infinity are
  // rejected, since they make the expiry comparison meaningless.
  TSAJS_REQUIRE(std::isfinite(max_seconds),
                "solve budget max_seconds must be finite");
}

void SolveRequest::validate() const {
  TSAJS_REQUIRE(problem != nullptr, "solve request must carry a problem");
  TSAJS_REQUIRE(rng != nullptr, "solve request must carry an rng");
  if (budget != nullptr) budget->validate();
}

namespace {

std::string format_slot(std::size_t u, const jtora::Slot& slot) {
  std::ostringstream os;
  os << "user " << u << " -> (server " << slot.server << ", subchannel "
     << slot.subchannel << ')';
  return os.str();
}

// Full release-mode audit of one solve. Re-derives every constraint the
// scheduler contract promises — structural map consistency, (12b)-(12d)
// from the public maps, fault masks, finite per-user outcomes, and the
// reported utility against an independent evaluation — collecting *all*
// violations before throwing a single ValidationError. The evaluator binds
// the already-compiled problem, so the guard costs no table rebuild.
void validate_result(const Scheduler& scheduler,
                     const jtora::CompiledProblem& problem,
                     const ScheduleResult& result) {
  std::vector<std::string> violations;
  const jtora::Assignment& x = result.assignment;

  if (x.num_users() != problem.num_users() ||
      x.num_servers() != problem.num_servers() ||
      x.num_subchannels() != problem.num_subchannels()) {
    std::ostringstream os;
    os << "assignment shape (" << x.num_users() << " users, "
       << x.num_servers() << 'x' << x.num_subchannels()
       << " slots) does not match the problem (" << problem.num_users()
       << " users, " << problem.num_servers() << 'x'
       << problem.num_subchannels() << " slots)";
    violations.push_back(os.str());
    // Every later check indexes by these dimensions; stop here.
    throw ValidationError(scheduler.name(), std::move(violations));
  }

  // Internal map invariants (redundant slot->user index, cached counts).
  try {
    x.check_consistency();
  } catch (const Error& error) {
    violations.push_back(std::string("internal map corruption: ") +
                         error.what());
  }

  // Constraints (12b)-(12d) re-derived from the public maps, plus the
  // fault-mask rule: an offloaded user must occupy exactly one in-range,
  // available slot, and no slot may carry two users. (12b, one slot per
  // user, holds by the slot_of representation; the cross-map check catches
  // a slot claimed by two users.)
  std::size_t offloaded = 0;
  for (std::size_t u = 0; u < x.num_users(); ++u) {
    const auto slot = x.slot_of(u);
    if (!slot.has_value()) continue;
    ++offloaded;
    if (slot->server >= problem.num_servers() ||
        slot->subchannel >= problem.num_subchannels()) {
      violations.push_back(format_slot(u, *slot) +
                           ": slot outside the scheduling grid (12c)");
      continue;
    }
    const auto occupant = x.occupant(slot->server, slot->subchannel);
    if (!occupant.has_value() || *occupant != u) {
      violations.push_back(format_slot(u, *slot) +
                           ": slot not held exclusively (12d)");
    }
    if (!problem.slot_available(slot->server, slot->subchannel)) {
      violations.push_back(format_slot(u, *slot) +
                           ": slot is fault-masked unavailable");
    }
  }
  std::size_t occupied = 0;
  for (std::size_t s = 0; s < x.num_servers(); ++s) {
    for (std::size_t j = 0; j < x.num_subchannels(); ++j) {
      if (x.occupant(s, j).has_value()) ++occupied;
    }
  }
  if (occupied != offloaded) {
    std::ostringstream os;
    os << occupied << " occupied slots vs " << offloaded
       << " offloaded users (12b/12d cross-map mismatch)";
    violations.push_back(os.str());
  }

  // Cloud tier: the assignment's forwarding state must mirror the problem's
  // tier, every forwarded user must be offloaded via a live backhaul, and
  // the admission cap must hold.
  if (x.cloud_enabled() != problem.has_cloud()) {
    violations.push_back(
        x.cloud_enabled()
            ? "assignment carries forwarding state but the problem has no "
              "cloud tier"
            : "problem has a cloud tier but the assignment was built without "
              "one");
  } else if (x.cloud_enabled()) {
    std::size_t forwarded = 0;
    for (std::size_t u = 0; u < x.num_users(); ++u) {
      if (!x.is_forwarded(u)) continue;
      ++forwarded;
      const auto slot = x.slot_of(u);
      if (!slot.has_value()) {
        std::ostringstream os;
        os << "user " << u << " is forwarded to the cloud but not offloaded";
        violations.push_back(os.str());
        continue;
      }
      if (!problem.cloud_forwardable(slot->server)) {
        violations.push_back(format_slot(u, *slot) +
                             ": forwarded over a down backhaul");
      }
    }
    if (forwarded != x.num_forwarded()) {
      std::ostringstream os;
      os << "cached forwarded count " << x.num_forwarded() << " vs "
         << forwarded << " forwarded users";
      violations.push_back(os.str());
    }
    if (problem.cloud_max_forwarded() > 0 &&
        forwarded > problem.cloud_max_forwarded()) {
      std::ostringstream os;
      os << forwarded << " forwarded users exceed the cloud admission cap "
         << problem.cloud_max_forwarded();
      violations.push_back(os.str());
    }
  }

  // Reported utility: finite and within tolerance of an independent
  // evaluation; per-user delay / energy / utility finite.
  const jtora::UtilityEvaluator evaluator(problem);
  const double recomputed = evaluator.system_utility(x);
  if (!std::isfinite(result.system_utility)) {
    violations.push_back("reported system utility is not finite");
  } else {
    const double tolerance =
        1e-6 * std::max(1.0, std::fabs(recomputed)) + 1e-9;
    if (!(std::fabs(recomputed - result.system_utility) <= tolerance)) {
      std::ostringstream os;
      os << "reported utility " << result.system_utility
         << " disagrees with independent evaluation " << recomputed;
      violations.push_back(os.str());
    }
  }
  const jtora::Evaluation evaluation = evaluator.evaluate(x);
  for (std::size_t u = 0; u < evaluation.users.size(); ++u) {
    const jtora::UserOutcome& outcome = evaluation.users[u];
    if (!std::isfinite(outcome.total_delay_s) ||
        !std::isfinite(outcome.energy_j) || !std::isfinite(outcome.utility)) {
      std::ostringstream os;
      os << "user " << u << " outcome not finite (delay "
         << outcome.total_delay_s << " s, energy " << outcome.energy_j
         << " J, utility " << outcome.utility << ')';
      violations.push_back(os.str());
    }
  }

  if (!violations.empty()) {
    throw ValidationError(scheduler.name(), std::move(violations));
  }
}

}  // namespace

ScheduleResult Scheduler::schedule(const jtora::CompiledProblem& problem,
                                   Rng& rng) const {
  SolveRequest request;
  request.problem = &problem;
  request.rng = &rng;
  return solve(request);
}

ScheduleResult Scheduler::schedule(const mec::Scenario& scenario,
                                   Rng& rng) const {
  const jtora::CompiledProblem problem(scenario);
  return schedule(problem, rng);
}

ScheduleResult Scheduler::schedule_from(const jtora::CompiledProblem& problem,
                                        const jtora::Assignment& hint,
                                        Rng& rng) const {
  SolveRequest request;
  request.problem = &problem;
  request.hint = &hint;
  request.rng = &rng;
  return solve(request);
}

ScheduleResult Scheduler::schedule_from(const mec::Scenario& scenario,
                                        const jtora::Assignment& hint,
                                        Rng& rng) const {
  const jtora::CompiledProblem problem(scenario);
  return schedule_from(problem, hint, rng);
}

ScheduleResult Scheduler::schedule_within(const jtora::CompiledProblem& problem,
                                          const SolveBudget& budget,
                                          Rng& rng) const {
  SolveRequest request;
  request.problem = &problem;
  request.budget = &budget;
  request.rng = &rng;
  return solve(request);
}

ScheduleResult Scheduler::schedule_from_within(
    const jtora::CompiledProblem& problem, const jtora::Assignment& hint,
    const SolveBudget& budget, Rng& rng) const {
  SolveRequest request;
  request.problem = &problem;
  request.hint = &hint;
  request.budget = &budget;
  request.rng = &rng;
  return solve(request);
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const SolveRequest& request) {
  request.validate();
  Stopwatch timer;
  ScheduleResult result = scheduler.solve(request);
  result.solve_seconds = timer.elapsed_seconds();
  validate_result(scheduler, *request.problem, result);
  return result;
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const jtora::CompiledProblem& problem,
                                Rng& rng) {
  SolveRequest request;
  request.problem = &problem;
  request.rng = &rng;
  return run_and_validate(scheduler, request);
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const jtora::CompiledProblem& problem,
                                const jtora::Assignment& hint, Rng& rng) {
  SolveRequest request;
  request.problem = &problem;
  request.hint = &hint;
  request.rng = &rng;
  return run_and_validate(scheduler, request);
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const mec::Scenario& scenario, Rng& rng) {
  // Compiled inside the timed region so one-shot callers keep the historic
  // "solve time includes setup" accounting.
  Stopwatch timer;
  const jtora::CompiledProblem problem(scenario);
  SolveRequest request;
  request.problem = &problem;
  request.rng = &rng;
  ScheduleResult result = scheduler.solve(request);
  result.solve_seconds = timer.elapsed_seconds();
  validate_result(scheduler, problem, result);
  return result;
}

ScheduleResult run_and_validate(const Scheduler& scheduler,
                                const mec::Scenario& scenario,
                                const jtora::Assignment& hint, Rng& rng) {
  Stopwatch timer;
  const jtora::CompiledProblem problem(scenario);
  SolveRequest request;
  request.problem = &problem;
  request.hint = &hint;
  request.rng = &rng;
  ScheduleResult result = scheduler.solve(request);
  result.solve_seconds = timer.elapsed_seconds();
  validate_result(scheduler, problem, result);
  return result;
}

jtora::Assignment repair_hint(const mec::Scenario& scenario,
                              const jtora::Assignment& hint) {
  jtora::Assignment x(scenario);
  const std::size_t users =
      std::min(scenario.num_users(), hint.num_users());
  for (std::size_t u = 0; u < users; ++u) {
    const auto slot = hint.slot_of(u);
    if (!slot.has_value()) continue;
    if (slot->server >= scenario.num_servers() ||
        slot->subchannel >= scenario.num_subchannels()) {
      continue;  // the slot no longer exists; the user re-enters local
    }
    if (!x.slot_available(slot->server, slot->subchannel)) {
      continue;  // the resource faulted; the user degrades to local
    }
    if (x.occupant(slot->server, slot->subchannel).has_value()) {
      continue;  // first-come (lowest user index) keeps a contested slot
    }
    x.offload(u, slot->server, slot->subchannel);
    // Carry the cloud-forwarding bit when the new scenario still admits it;
    // a vanished tier, dead backhaul, or full cloud strands the user on edge
    // service (still feasible) rather than on a dead cloud path.
    if (hint.is_forwarded(u) && x.can_forward(u)) {
      x.set_forwarded(u, true);
    }
  }
  return x;
}

jtora::Assignment random_feasible_assignment(const mec::Scenario& scenario,
                                             Rng& rng, double offload_prob) {
  TSAJS_REQUIRE(offload_prob >= 0.0 && offload_prob <= 1.0,
                "offload probability must lie in [0,1]");
  jtora::Assignment x(scenario);
  for (std::size_t u = 0; u < scenario.num_users(); ++u) {
    if (!rng.bernoulli(offload_prob)) continue;
    // Pick among servers that still have a free sub-channel.
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < scenario.num_servers(); ++s) {
      if (!x.free_subchannels(s).empty()) candidates.push_back(s);
    }
    if (candidates.empty()) continue;
    const std::size_t s = candidates[rng.uniform_index(candidates.size())];
    const auto j = x.random_free_subchannel(s, rng);
    TSAJS_CHECK(j.has_value(), "candidate server must have a free channel");
    x.offload(u, s, *j);
  }
  return x;
}

}  // namespace tsajs::algo
