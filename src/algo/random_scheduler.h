// Random feasible scheduler — a sanity floor for tests and ablations.
#pragma once

#include "algo/scheduler.h"

namespace tsajs::algo {

/// Returns a random feasible assignment (the TSAJS/LocalSearch initializer)
/// without any search. Every real scheme must beat this on average.
class RandomScheduler final : public Scheduler {
 public:
  using Scheduler::schedule;

  explicit RandomScheduler(double offload_prob = 0.5);

  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] ScheduleResult schedule(const jtora::CompiledProblem& problem,
                                        Rng& rng) const override;

 private:
  double offload_prob_;
};

}  // namespace tsajs::algo
