// Random feasible scheduler — a sanity floor for tests and ablations.
#pragma once

#include "algo/scheduler.h"

namespace tsajs::algo {

/// Returns a random feasible assignment (the TSAJS/LocalSearch initializer)
/// without any search. Every real scheme must beat this on average.
class RandomScheduler final : public Scheduler {
 public:

  explicit RandomScheduler(double offload_prob = 0.5);

  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] ScheduleResult solve(
      const SolveRequest& request) const override;

 private:
  double offload_prob_;
};

}  // namespace tsajs::algo
