#include "algo/neighborhood.h"

namespace tsajs::algo {

void NeighborhoodConfig::validate() const {
  TSAJS_REQUIRE(toggle_prob >= 0.0 && swap_prob >= 0.0 &&
                    toggle_prob + swap_prob <= 1.0,
                "operation probabilities must form a sub-distribution");
  TSAJS_REQUIRE(move_server_share >= 0.0 && move_server_share <= 1.0,
                "move_server_share must lie in [0,1]");
  TSAJS_REQUIRE(forward_prob >= 0.0 && forward_prob <= 1.0,
                "forward_prob must lie in [0,1]");
}

Neighborhood::Neighborhood(const mec::Scenario& scenario,
                           NeighborhoodConfig config)
    : scenario_(&scenario), config_(config),
      cloud_active_(scenario.has_cloud()) {
  config_.validate();
}

}  // namespace tsajs::algo
