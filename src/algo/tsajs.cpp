#include "algo/tsajs.h"

#include <cmath>

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/watchdog.h"
#include "jtora/incremental.h"

namespace tsajs::algo {

void TsajsConfig::validate() const {
  TSAJS_REQUIRE(chain_length >= 1, "chain length must be at least 1");
  TSAJS_REQUIRE(min_temperature > 0.0, "min temperature must be positive");
  TSAJS_REQUIRE(alpha_slow > 0.0 && alpha_slow < 1.0,
                "alpha_slow must lie in (0,1)");
  TSAJS_REQUIRE(alpha_fast > 0.0 && alpha_fast < 1.0,
                "alpha_fast must lie in (0,1)");
  TSAJS_REQUIRE(alpha_fast <= alpha_slow,
                "fast cooling must not be slower than slow cooling");
  TSAJS_REQUIRE(threshold_factor > 0.0, "threshold factor must be positive");
  TSAJS_REQUIRE(!initial_temperature.has_value() || *initial_temperature > 0.0,
                "initial temperature must be positive");
  TSAJS_REQUIRE(initial_offload_prob >= 0.0 && initial_offload_prob <= 1.0,
                "initial offload probability must lie in [0,1]");
  TSAJS_REQUIRE(warm_reheat > min_temperature,
                "warm reheat temperature must exceed the minimum temperature");
  budget.validate();
  neighborhood.validate();
}

TsajsScheduler::TsajsScheduler(TsajsConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

std::string TsajsScheduler::name() const {
  return config_.cooling == CoolingMode::kThresholdTriggered ? "tsajs"
                                                             : "tsajs-geo";
}

namespace {

// The annealing loop, generic over the evaluation strategy. `Propose` takes
// (rng) and returns the candidate utility without changing the current
// state; `Commit` realizes the last proposal and returns the utility
// actually reached (the evaluation strategy's own bookkeeping value);
// `Snapshot` returns the current assignment by value. Rejection is free by
// construction: an unrealized proposal leaves no trace.
template <typename Propose, typename Commit, typename Snapshot>
ScheduleResult anneal(const TsajsConfig& config, const SolveBudget& budget,
                      const CancelToken* cancel, Rng& rng,
                      double initial_temperature, double initial_utility,
                      Propose&& propose, Commit&& commit,
                      Snapshot&& snapshot) {
  // Algorithm 1 lines 3-4: temperature schedule parameters.
  double temperature = initial_temperature;
  TSAJS_CHECK(temperature > config.min_temperature,
              "initial temperature must exceed the minimum");
  const double max_count =
      config.threshold_factor * static_cast<double>(config.chain_length);

  double current_utility = initial_utility;
  ScheduleResult result{snapshot(), current_utility, 0.0, 1};

  // Anytime budget: consulted only at plateau boundaries, and only when the
  // caller set one, so an unlimited solve takes the identical path.
  const bool budgeted = !budget.unlimited();
  const Stopwatch deadline_timer;

  std::size_t worse_accept_count = 0;  // Algorithm 1's `count`.
  while (temperature > config.min_temperature) {
    for (std::size_t i = 0; i < config.chain_length; ++i) {
      // Lines 10-12: neighbor + closed-form CRA folded into the objective.
      const double candidate_utility = propose(rng);
      ++result.evaluations;

      const double delta = candidate_utility - current_utility;
      if (delta > 0.0) {
        current_utility = commit();
        if (current_utility > result.system_utility) {
          result.assignment = snapshot();
          result.system_utility = current_utility;
        }
      } else if (std::exp(delta / temperature) > rng.uniform()) {
        // Lines 20-22: accept a worse solution, count it.
        current_utility = commit();
        ++worse_accept_count;
      }
      // else: reject — the unrealized proposal simply evaporates.
    }
    // Anytime budget: a plateau boundary is a safe point — `result` always
    // holds the best feasible decision seen so far, so stopping here is
    // "return best-so-far", never "return partial state". A negative
    // deadline compares as already expired, and a cancelled token stops
    // the solve under the same contract.
    if (budgeted &&
        ((budget.max_iterations != 0 &&
          result.evaluations >= budget.max_iterations) ||
         (budget.max_seconds != 0.0 &&
          deadline_timer.elapsed_seconds() >= budget.max_seconds))) {
      break;
    }
    if (cancel != nullptr && cancel->cancelled()) break;
    // Lines 26-30: threshold-triggered cooling.
    if (config.cooling == CoolingMode::kGeometric) {
      temperature *= config.alpha_slow;
    } else if (static_cast<double>(worse_accept_count) < max_count) {
      temperature *= config.alpha_slow;
    } else {
      temperature *= config.alpha_fast;
      worse_accept_count = 0;
    }
  }
  return result;
}

}  // namespace

ScheduleResult TsajsScheduler::solve(const SolveRequest& request) const {
  request.validate();
  const jtora::CompiledProblem& problem = *request.problem;
  const SolveBudget& budget =
      request.budget != nullptr ? *request.budget : config_.budget;
  Rng& rng = *request.rng;
  if (request.hint != nullptr) {
    // The hint replaces the random start; repair makes it feasible for this
    // scenario whatever it was shaped for. Annealing restarts from the low
    // warm_reheat temperature instead of re-melting at T = N.
    return budgeted_solve(problem, repair_hint(problem.scenario(), *request.hint),
                          config_.warm_reheat, budget, request.cancel, rng);
  }
  // Algorithm 1 line 5: random feasible initial solution; line 3: T <- N.
  jtora::Assignment initial = random_feasible_assignment(
      problem.scenario(), rng, config_.initial_offload_prob);
  const double initial_temperature = config_.initial_temperature.value_or(
      static_cast<double>(problem.num_subchannels()));
  return budgeted_solve(problem, std::move(initial), initial_temperature,
                        budget, request.cancel, rng);
}

ScheduleResult TsajsScheduler::budgeted_solve(
    const jtora::CompiledProblem& problem, jtora::Assignment initial,
    double initial_temperature, const SolveBudget& budget,
    const CancelToken* cancel, Rng& rng) const {
  ScheduleResult result = anneal_solve(problem, std::move(initial),
                                       initial_temperature, budget, cancel,
                                       rng);
  if ((!budget.unlimited() || cancel != nullptr) &&
      result.system_utility < 0.0) {
    // The budget fired before the search reached anything at least as good
    // as all-local execution (system utility exactly 0, feasible by
    // construction): degrade to it rather than return a worse start.
    result.assignment = jtora::Assignment(problem.scenario());
    result.system_utility = 0.0;
  }
  return result;
}

ScheduleResult TsajsScheduler::anneal_solve(
    const jtora::CompiledProblem& problem, jtora::Assignment initial,
    double initial_temperature, const SolveBudget& budget,
    const CancelToken* cancel, Rng& rng) const {
  const Neighborhood neighborhood(problem.scenario(), config_.neighborhood);

  if (config_.use_incremental_evaluator) {
    // Preview/commit protocol: propose() only *describes* the move and
    // previews its utility from the shared problem's caches; nothing is
    // mutated until the annealer accepts, so rejected proposals cost no
    // apply+rollback round trip and no undo bookkeeping.
    jtora::IncrementalEvaluator state(problem, initial);
    state.set_undo_logging(false);
    state.set_rebuild_interval(config_.rebuild_interval);
    Neighborhood::Move move;
    return anneal(
        config_, budget, cancel, rng, initial_temperature, state.utility(),
        /*propose=*/
        [&](Rng& r) {
          move = neighborhood.propose(state, r);
          return neighborhood.preview(state, move);
        },
        /*commit=*/
        [&] {
          neighborhood.apply_move(state, move);
          return state.utility();
        },
        /*snapshot=*/[&] { return state.assignment(); });
  }

  const jtora::UtilityEvaluator evaluator(problem);
  jtora::Assignment current = initial;
  jtora::Assignment candidate = current;
  double candidate_utility = 0.0;
  return anneal(
      config_, budget, cancel, rng, initial_temperature,
      evaluator.system_utility(current),
      /*propose=*/
      [&](Rng& r) {
        candidate = current;
        neighborhood.step(candidate, r);
        candidate_utility = evaluator.system_utility(candidate);
        return candidate_utility;
      },
      /*commit=*/
      [&] {
        current = candidate;
        return candidate_utility;
      },
      /*snapshot=*/[&] { return current; });
}

}  // namespace tsajs::algo
