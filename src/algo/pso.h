// Discrete particle-swarm scheduler — an extension baseline.
//
// The paper's related work cites suboptimal offloading algorithms built on
// particle swarm optimization [33]. Classic PSO lives in R^n; offloading
// decisions are combinatorial, so we use the standard discrete adaptation:
// a particle is an assignment, and "velocity" becomes a recombination rate —
// each step a particle copies each user's gene from its personal best with
// probability `c1`, from the global best with probability `c2`, keeps its
// own otherwise, then takes `mutation_steps` random neighborhood steps
// (the inertia/exploration term). Collisions are repaired first-fit as in
// the genetic scheduler.
#pragma once

#include "algo/neighborhood.h"
#include "algo/scheduler.h"

namespace tsajs::algo {

struct PsoConfig {
  std::size_t particles = 20;
  std::size_t iterations = 150;
  /// Per-user probability of copying the personal-best gene.
  double c1 = 0.3;
  /// Per-user probability of copying the global-best gene.
  double c2 = 0.3;
  /// Random neighborhood steps per particle per iteration (exploration).
  std::size_t mutation_steps = 1;
  /// Offload probability of the initial swarm.
  double initial_offload_prob = 0.25;
  NeighborhoodConfig neighborhood;

  void validate() const;
};

class PsoScheduler final : public Scheduler {
 public:

  explicit PsoScheduler(PsoConfig config = {});

  [[nodiscard]] std::string name() const override { return "pso"; }
  [[nodiscard]] ScheduleResult solve(
      const SolveRequest& request) const override;

 private:
  PsoConfig config_;
};

}  // namespace tsajs::algo
