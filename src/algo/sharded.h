// ShardedScheduler — interference-locality decomposition for city-scale
// solves.
//
// The wrapped scheduler ("inner") sees per-shard subproblems produced by
// jtora::ShardedProblem over a geo::InterferencePartition of the cell
// sites: beyond the interference reach, co-channel coupling is negligible,
// so shards are (nearly) independent and solve in parallel on the shared
// ThreadPool. Afterwards a deterministic *boundary fixup* re-scores every
// user homed in a boundary cell against the full global problem — the one
// place the decomposition neglected cross-shard interference — using the
// IncrementalEvaluator's batch sub-channel previews (jtora::batch) and
// keeping only strict improvements.
//
// Determinism: child seeds derive from the caller Rng up front in shard
// order (the MultiStartScheduler pattern), shard solves merge in shard
// order, and the fixup scans boundary users / sub-channels / servers in
// ascending order with strict-improvement acceptance — the result is a
// pure function of (problem, seed), independent of thread count.
//
// Degenerate decompositions pass straight through: with a single shard (or
// a single cell site, where no finite reach separates anything) schedule()
// delegates to the inner scheduler with the caller's own Rng, so the
// result is bit-identical to the unsharded solve.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "algo/scheduler.h"

namespace tsajs::algo {

struct ShardedConfig {
  /// Interference reach [m] for the partition; 0 (default) derives it from
  /// the deployment via geo::InterferencePartition::auto_reach.
  double reach_m = 0.0;
  /// Boundary fixup rounds after the shard solves. Each round sweeps the
  /// boundary users once; rounds stop early when a sweep changes nothing.
  std::size_t fixup_passes = 2;
  /// Worker threads for the shard solves: 1 = sequential (default),
  /// 0 = hardware concurrency. Results are identical for every setting.
  std::size_t threads = 1;
  /// Wall-clock guard checked between shard merge and each fixup round
  /// (max_seconds only; the iteration cap is the inner scheduler's
  /// business). The merged shard solution is always feasible, so firing
  /// the budget mid-fixup still returns a valid anytime result.
  SolveBudget budget;

  void validate() const;
};

class ShardedScheduler : public Scheduler {
 public:
  explicit ShardedScheduler(std::unique_ptr<Scheduler> inner,
                            ShardedConfig config = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] ScheduleResult schedule(const jtora::CompiledProblem& problem,
                                        Rng& rng) const override;

  using Scheduler::schedule;

 private:
  std::unique_ptr<Scheduler> inner_;
  ShardedConfig config_;
};

}  // namespace tsajs::algo
