// ShardedScheduler — interference-locality decomposition for city-scale
// solves.
//
// The wrapped scheduler ("inner") sees per-shard subproblems produced by
// jtora::ShardedProblem over a geo::InterferencePartition of the cell
// sites: beyond the interference reach, co-channel coupling is negligible,
// so shards are (nearly) independent and solve in parallel on a
// common::ThreadPool. Afterwards a deterministic *boundary fixup*
// re-scores every user homed in a boundary cell against the full global
// problem — the one place the decomposition neglected cross-shard
// interference — using the IncrementalEvaluator's batch sub-channel
// previews and keeping only strict improvements.
//
// Parallelism & determinism (see DESIGN.md "Parallel sharded solving"):
//   * Shard solves: child seeds derive from the caller Rng up front in
//     shard order (the MultiStartScheduler pattern), results land in
//     preallocated per-shard slots, and the merge scans them in shard
//     order — bit-identical for every thread count.
//   * Budget split: the anytime SolveBudget is sliced across shards
//     work-proportionally (weight = shard users x servers; largest-
//     remainder apportionment for the iteration cap), handed to a
//     budget-aware inner scheme via its SolveRequest, and followed by a
//     deadline-aware reclaim pass: slack the fast shards left behind —
//     unused iterations plus whatever remains of the wall clock — is
//     re-split over the truncated shards, which re-solve warm from their
//     own phase-1 result. With an iteration budget the whole policy is a
//     pure function of (problem, seed); wall-clock caps are anytime by
//     nature and never bit-stable.
//   * Boundary fixup: shards are greedily colored on the *squared* shard
//     adjacency (conflict = adjacent or sharing a neighbor), so same-color
//     shards have disjoint server halos. Each color class sweeps its
//     shards' boundary users concurrently against private snapshots of the
//     master evaluator (candidates restricted to the shard's halo) and
//     commits in shard order — Jacobi within a class, Gauss-Seidel across
//     classes — which makes the sweep thread-count independent by
//     construction. Each pass re-checks the deadline before it starts,
//     before every color class, and every 32 users inside a sweep.
//
// Warm start & epoch reuse: the scheduler is warm-startable — a global hint
// is repaired once, sliced per shard (jtora::ShardedProblem::shard_hint),
// and rides each shard's SolveRequest, so the dynamic
// simulator's carried-assignment path works transparently. The partition,
// the fixup coloring, and the per-shard compilations persist across
// solve() calls in an internal cache keyed by the site layout; per
// epoch only the shard scenarios refresh (membership-changed shards
// rebuild, the rest recompile in place). Caching is bitwise-invisible.
//
// Degenerate decompositions pass straight through: with a single shard (or
// a single cell site, where no finite reach separates anything) schedule()
// delegates to the inner scheduler with the caller's own Rng — budget and
// hint still applied — so the result is bit-identical to the unsharded
// solve.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "algo/scheduler.h"

namespace tsajs::algo {

struct ShardedConfig {
  /// Interference reach [m] for the partition; 0 (default) derives it from
  /// the deployment via geo::InterferencePartition::auto_reach.
  double reach_m = 0.0;
  /// Boundary fixup rounds after the shard solves. Each round sweeps the
  /// boundary users once (colored, see above); rounds stop early when a
  /// sweep changes nothing.
  std::size_t fixup_passes = 2;
  /// Worker threads for the shard solves and the colored fixup sweeps:
  /// 1 = sequential (default), 0 = hardware concurrency. Results are
  /// identical for every setting.
  std::size_t threads = 1;
  /// Anytime budget for the whole sharded solve. The iteration cap and the
  /// wall-clock deadline are split across the shard solves when the inner
  /// scheme is budget-aware (work-proportional + reclaim, see above); the
  /// wall-clock deadline additionally guards the fixup rounds. The merged
  /// shard solution is always feasible, so firing the budget at any point
  /// still returns a valid anytime result.
  SolveBudget budget;
  /// Hedged-retry trigger for shard solves that *overrun* their budget
  /// slice (0 disables; otherwise must be >= 1). A shard whose phase-1
  /// solve blows past `hedge_factor` x its apportioned slice is treated as
  /// stuck: its result is replaced by the better of itself and a
  /// deterministic greedy fallback solve, and it no longer competes for
  /// reclaimed budget. Overrun detection is a pure function of the shard's
  /// reported evaluation count under an iteration budget — sequential and
  /// N-thread solves stay bit-identical — while under a wall-clock budget a
  /// Watchdog additionally cancels the overrunning solve cooperatively at
  /// hedge_factor x the slice deadline (wall-clock mode was never
  /// bit-stable). No effect unless the solve is budgeted.
  double hedge_factor = 0.0;

  void validate() const;
};

class ShardedScheduler : public Scheduler {
 public:
  explicit ShardedScheduler(std::unique_ptr<Scheduler> inner,
                            ShardedConfig config = {});
  ~ShardedScheduler() override;

  [[nodiscard]] std::string name() const override;

  /// Warm start: the request hint is repaired against the problem, sliced
  /// per shard, and handed down to the inner scheme's solve (which uses it
  /// when warm-startable); the boundary fixup then runs as in a cold solve.
  /// A request budget overrides `config().budget` as the global anytime
  /// budget being split across shards.
  [[nodiscard]] ScheduleResult solve(
      const SolveRequest& request) const override;

  /// The wrapper itself honors both optional fields: a hint is sliced per
  /// shard, a budget is split work-proportionally — regardless of what the
  /// inner scheme supports (an incapable inner just solves its shards cold
  /// and uncapped).
  [[nodiscard]] std::uint32_t capabilities() const noexcept override {
    return kWarmStart | kBudgetAware;
  }

 private:
  struct Cache;

  [[nodiscard]] ScheduleResult sharded_solve(
      const jtora::CompiledProblem& problem, const jtora::Assignment* hint,
      const SolveBudget& budget, const CancelToken* cancel, Rng& rng) const;
  /// Degenerate (single-shard) path: delegate to the inner scheme with the
  /// caller's Rng, still applying the effective budget, hint, and cancel
  /// token.
  [[nodiscard]] ScheduleResult passthrough(
      const jtora::CompiledProblem& problem, const jtora::Assignment* hint,
      const SolveBudget& budget, const CancelToken* cancel, Rng& rng) const;

  std::unique_ptr<Scheduler> inner_;
  /// Deterministic, RNG-free fallback for hedged shard retries (greedy).
  std::unique_ptr<Scheduler> hedge_fallback_;
  ShardedConfig config_;
  /// Epoch cache (partition, coloring, per-shard compilations), reused
  /// while the site layout and reach stay put. The mutex is held for the
  /// whole solve, serializing concurrent schedule() calls on one instance.
  mutable std::mutex cache_mutex_;
  mutable std::unique_ptr<Cache> cache_;
};

}  // namespace tsajs::algo
