// Report construction for the bench binaries.
//
// A paper figure is a sweep: an x-axis (workload, #users, #sub-channels,
// ...) against one metric, one series per scheme. `make_sweep_table` turns
// the runner's per-point stats into that table; metric selectors pick the
// quantity a given figure plots.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/table.h"
#include "exp/trial_runner.h"

namespace tsajs::exp {

/// Renders one cell from a scheme's aggregated stats.
using MetricFn = std::function<std::string(const SchemeStats&)>;

/// Mean system utility, optionally with its 95% CI half-width.
[[nodiscard]] MetricFn metric_utility(bool with_ci = false,
                                      int precision = 4);
/// Mean wall-clock solve time, SI-formatted (Fig. 8).
[[nodiscard]] MetricFn metric_runtime(int precision = 4);
/// Solve-latency tail: "p50 / p99" over the point's trials, SI-formatted.
/// Falls back to "-" when the stats carry no raw samples.
[[nodiscard]] MetricFn metric_runtime_percentiles(int precision = 4);
/// Mean per-user completion delay [s] (Fig. 9b).
[[nodiscard]] MetricFn metric_delay(int precision = 4);
/// Mean per-user energy [J] (Fig. 9a).
[[nodiscard]] MetricFn metric_energy(int precision = 4);
/// Mean number of offloaded users.
[[nodiscard]] MetricFn metric_offloaded(int precision = 2);

/// Builds a table: first column = `x_name` with `labels`, one column per
/// scheme found in `rows` (all points must list the same schemes in the
/// same order), cells rendered by `metric`.
[[nodiscard]] Table make_sweep_table(
    const std::string& x_name, const std::vector<std::string>& labels,
    const std::vector<std::vector<SchemeStats>>& rows, const MetricFn& metric);

/// Prints `table` to stdout under a figure banner, and writes
/// `<csv_prefix>.csv` when csv_prefix is non-empty.
void emit_report(const std::string& title, const Table& table,
                 const std::string& csv_prefix);

/// Full sweep emission: ASCII table to stdout, plus `<prefix>.csv`
/// (formatted cells) and `<prefix>.json` (raw statistics, see
/// exp/json_writer.h) when `csv_prefix` is non-empty.
void emit_sweep(const std::string& title, const std::string& x_name,
                const std::vector<std::string>& labels,
                const std::vector<std::vector<SchemeStats>>& rows,
                const MetricFn& metric, const std::string& csv_prefix);

}  // namespace tsajs::exp
