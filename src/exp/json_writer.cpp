#include "exp/json_writer.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace tsajs::exp {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

// JSON has no Inf/NaN; map them to null.
std::string number(double x) {
  if (!std::isfinite(x)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

}  // namespace

std::string json_of(const Accumulator& acc, double confidence) {
  const ConfidenceInterval ci = confidence_interval(acc, confidence);
  std::ostringstream os;
  os << "{\"count\":" << acc.count() << ",\"mean\":" << number(acc.mean())
     << ",\"stddev\":" << number(acc.stddev())
     << ",\"min\":" << number(acc.count() ? acc.min() : 0.0)
     << ",\"max\":" << number(acc.count() ? acc.max() : 0.0)
     << ",\"ci\":[" << number(ci.lower()) << ',' << number(ci.upper())
     << "]}";
  return os.str();
}

void write_sweep_json(std::ostream& os, const std::string& sweep_name,
                      const std::vector<std::string>& labels,
                      const std::vector<std::vector<SchemeStats>>& rows) {
  TSAJS_REQUIRE(labels.size() == rows.size(),
                "one label per sweep point required");
  os << "{\"sweep\":\"" << json_escape(sweep_name) << "\",\"points\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r != 0) os << ',';
    os << "{\"label\":\"" << json_escape(labels[r]) << "\",\"schemes\":[";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      const SchemeStats& stats = rows[r][c];
      if (c != 0) os << ',';
      os << "{\"name\":\"" << json_escape(stats.scheme) << "\""
         << ",\"utility\":" << json_of(stats.utility)
         << ",\"solve_seconds\":" << json_of(stats.solve_seconds)
         << ",\"solve_p50\":"
         << number(stats.solve_samples.empty()
                       ? std::numeric_limits<double>::quiet_NaN()
                       : stats.solve_p50())
         << ",\"solve_p99\":"
         << number(stats.solve_samples.empty()
                       ? std::numeric_limits<double>::quiet_NaN()
                       : stats.solve_p99())
         << ",\"offloaded\":" << json_of(stats.offloaded)
         << ",\"mean_delay_s\":" << json_of(stats.mean_delay_s)
         << ",\"mean_energy_j\":" << json_of(stats.mean_energy_j) << '}';
    }
    os << "]}";
  }
  os << "]}\n";
}

void write_sweep_json_file(
    const std::string& path, const std::string& sweep_name,
    const std::vector<std::string>& labels,
    const std::vector<std::vector<SchemeStats>>& rows) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open JSON output file: " + path);
  write_sweep_json(out, sweep_name, labels, rows);
  if (!out) throw Error("failed writing JSON output file: " + path);
}

}  // namespace tsajs::exp
