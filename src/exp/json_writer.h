// Minimal JSON emission for experiment results.
//
// The CSV output (`Table::write_csv`) carries formatted strings; downstream
// analysis sometimes wants the raw statistics (counts, means, CI bounds,
// minima/maxima) without re-parsing. `write_sweep_json` emits one JSON
// document per sweep:
//
//   {
//     "sweep": "<x-axis name>",
//     "points": [
//       {"label": "...", "schemes": [
//          {"name": "tsajs", "utility": {"count":..,"mean":..,...},
//           "solve_seconds": {...}, "offloaded": {...},
//           "mean_delay_s": {...}, "mean_energy_j": {...}}, ...]}, ...]
//   }
//
// Only the JSON subset needed here is implemented (objects, arrays,
// strings, finite numbers); strings are escaped per RFC 8259.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"
#include "exp/trial_runner.h"

namespace tsajs::exp {

/// Escapes a string for embedding in a JSON document (adds no quotes).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Serializes one accumulator as a JSON object.
[[nodiscard]] std::string json_of(const Accumulator& acc,
                                  double confidence = 0.95);

/// Writes a whole sweep (same row structure as make_sweep_table).
void write_sweep_json(std::ostream& os, const std::string& sweep_name,
                      const std::vector<std::string>& labels,
                      const std::vector<std::vector<SchemeStats>>& rows);

/// Convenience: writes to a file path; throws Error on I/O failure.
void write_sweep_json_file(const std::string& path,
                           const std::string& sweep_name,
                           const std::vector<std::string>& labels,
                           const std::vector<std::vector<SchemeStats>>& rows);

}  // namespace tsajs::exp
