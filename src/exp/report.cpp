#include "exp/report.h"

#include <iostream>

#include "common/error.h"
#include "common/units.h"
#include "exp/json_writer.h"

namespace tsajs::exp {

MetricFn metric_utility(bool with_ci, int precision) {
  return [with_ci, precision](const SchemeStats& stats) {
    if (!with_ci) return format_double(stats.utility.mean(), precision);
    const ConfidenceInterval ci = stats.utility_ci();
    return format_ci(ci.mean, ci.half_width, precision);
  };
}

MetricFn metric_runtime(int precision) {
  return [precision](const SchemeStats& stats) {
    return units::duration_string(stats.solve_seconds.mean(), precision);
  };
}

MetricFn metric_runtime_percentiles(int precision) {
  return [precision](const SchemeStats& stats) -> std::string {
    if (stats.solve_samples.empty()) return "-";
    return units::duration_string(stats.solve_p50(), precision) + " / " +
           units::duration_string(stats.solve_p99(), precision);
  };
}

MetricFn metric_delay(int precision) {
  return [precision](const SchemeStats& stats) {
    return format_double(stats.mean_delay_s.mean(), precision);
  };
}

MetricFn metric_energy(int precision) {
  return [precision](const SchemeStats& stats) {
    return format_double(stats.mean_energy_j.mean(), precision);
  };
}

MetricFn metric_offloaded(int precision) {
  return [precision](const SchemeStats& stats) {
    return format_double(stats.offloaded.mean(), precision);
  };
}

Table make_sweep_table(const std::string& x_name,
                       const std::vector<std::string>& labels,
                       const std::vector<std::vector<SchemeStats>>& rows,
                       const MetricFn& metric) {
  TSAJS_REQUIRE(labels.size() == rows.size(),
                "one label per sweep point required");
  TSAJS_REQUIRE(!rows.empty(), "a sweep needs at least one point");

  std::vector<std::string> headers{x_name};
  for (const auto& stats : rows.front()) headers.push_back(stats.scheme);

  Table table(std::move(headers));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    TSAJS_REQUIRE(rows[r].size() == rows.front().size(),
                  "every sweep point must list the same schemes");
    std::vector<std::string> cells{labels[r]};
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      TSAJS_REQUIRE(rows[r][c].scheme == rows.front()[c].scheme,
                    "scheme order must match across sweep points");
      cells.push_back(metric(rows[r][c]));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

void emit_sweep(const std::string& title, const std::string& x_name,
                const std::vector<std::string>& labels,
                const std::vector<std::vector<SchemeStats>>& rows,
                const MetricFn& metric, const std::string& csv_prefix) {
  emit_report(title, make_sweep_table(x_name, labels, rows, metric),
              csv_prefix);
  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + ".json";
    write_sweep_json_file(path, x_name, labels, rows);
    std::cout << "(json written to " << path << ")\n";
  }
}

void emit_report(const std::string& title, const Table& table,
                 const std::string& csv_prefix) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + ".csv";
    table.write_csv_file(path);
    std::cout << "(csv written to " << path << ")\n";
  }
  std::cout.flush();
}

}  // namespace tsajs::exp
