// Monte-Carlo trial runner.
//
// One *trial* = one random drop (user placement + shadowing) solved by every
// scheme under test. The paper's figures plot means (with 95% CIs in Fig. 3)
// over repeated drops; `TrialRunner` reproduces that protocol with
// per-trial derived seeds so results are bit-reproducible and independent
// of thread scheduling. Each drop is compiled into a jtora::CompiledProblem
// exactly once and every scheme under test shares that compilation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "common/stats.h"
#include "mec/scenario_builder.h"

namespace tsajs::exp {

struct TrialSpec {
  mec::ScenarioBuilder builder;
  /// Scheme names (see algo::make_scheduler).
  std::vector<std::string> schemes;
  algo::RegistryOptions options;
  std::size_t trials = 30;
  std::uint64_t base_seed = 20250704;
};

/// Aggregated per-scheme results over all trials of a spec.
struct SchemeStats {
  std::string scheme;
  Accumulator utility;        ///< J*(X) per trial.
  Accumulator solve_seconds;  ///< wall-clock per solve (Fig. 8).
  Accumulator offloaded;      ///< #offloaded users per trial.
  Accumulator mean_delay_s;   ///< mean task completion time over all users.
  Accumulator mean_energy_j;  ///< mean per-user energy over all users.
  /// Raw per-trial solve times in trial order (index = trial), so tail
  /// latency is reportable: means hide stragglers that matter for the
  /// anytime-deadline story.
  std::vector<double> solve_samples;

  [[nodiscard]] ConfidenceInterval utility_ci(double confidence = 0.95) const {
    return confidence_interval(utility, confidence);
  }
  /// Median / 99th-percentile solve latency over the trials [s].
  [[nodiscard]] double solve_p50() const { return quantile(solve_samples, 0.5); }
  [[nodiscard]] double solve_p99() const {
    return quantile(solve_samples, 0.99);
  }
};

class TrialRunner {
 public:
  /// `num_threads == 0` uses the hardware concurrency.
  explicit TrialRunner(std::size_t num_threads = 0)
      : num_threads_(num_threads) {}

  /// Runs spec.trials drops; every scheme solves the *same* drops.
  [[nodiscard]] std::vector<SchemeStats> run(const TrialSpec& spec) const;

 private:
  std::size_t num_threads_;
};

}  // namespace tsajs::exp
