#include "exp/json_reader.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace tsajs::exp {

bool JsonValue::as_bool() const {
  TSAJS_REQUIRE(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  TSAJS_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  TSAJS_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  TSAJS_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  return array_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) throw NotFoundError("JSON object has no key: " + key);
  return *found;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  TSAJS_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  // Back-to-front: RFC-pragmatic "last duplicate wins".
  for (auto it = object_.rbegin(); it != object_.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  TSAJS_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return object_;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double x) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = x;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  /// Containers may nest at most this deep. The parser is recursive
  /// descent, so without a bound a hostile document of '[' repeated a few
  /// hundred thousand times overflows the C++ stack before any other check
  /// fires; 64 is far beyond anything our writers emit.
  static constexpr std::size_t kMaxDepth = 64;

  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << column << ": "
       << what;
    throw InvalidArgumentError(os.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  /// Bounds container recursion for the enclosing scope's lifetime.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("JSON nesting exceeds the depth limit");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::make_object(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::make_array(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by any writer we read; treat them as literal units).
          if (code < 0x80U) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800U) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number: " + token);
    }
    // Magnitude overflow (e.g. 1e999) saturates strtod to ±HUGE_VAL with
    // ERANGE; letting an infinity through would silently poison every
    // downstream comparison, so reject it here. Underflow-to-zero is
    // accepted (a denormal-or-zero result is a faithful reading).
    if (!std::isfinite(value)) {
      pos_ = start;
      fail("number overflows double: " + token);
    }
    return JsonValue::make_number(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;  ///< current container nesting (see kMaxDepth)
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) throw Error("failed reading JSON file: " + path);
  return parse_json(buffer.str());
}

}  // namespace tsajs::exp
