// Minimal JSON parsing for the tooling side of the bench pipeline.
//
// The repo writes JSON in two shapes — the sweep documents of
// exp/json_writer.h and google-benchmark's --benchmark_out format — and
// tools/bench_check needs to read both back without growing a third-party
// dependency. This is a small recursive-descent parser for the RFC 8259
// grammar (objects, arrays, strings with escapes, numbers, true/false/null)
// into a JsonValue tree. Object member order is preserved; duplicate keys
// keep the last value (lookup scans from the back). Numbers parse as
// double, which round-trips everything json_writer emits and everything
// bench_check consumes (counts and nanosecond timings).
//
// The parser is hardened against hostile or corrupted input: container
// nesting is bounded (64 levels — recursion cannot overflow the C++
// stack), numbers whose magnitude overflows double (1e999) are rejected
// rather than silently saturating to infinity, and any truncation or
// byte corruption of a valid document either still parses or throws
// InvalidArgumentError with a line/column diagnostic — it never crashes.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tsajs::exp {

/// One parsed JSON value. A tagged tree: exactly one of the containers is
/// meaningful, per `kind()`.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }

  /// Typed accessors; each throws InvalidArgumentError when the value is
  /// not of the requested kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;

  /// Object member by key; throws NotFoundError when missing (use
  /// find(key) for optional members).
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Object member by key, or nullptr when absent (requires an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Object members in document order.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  // Construction (used by the parser; also handy in tests).
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double x);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (throws InvalidArgumentError on syntax errors,
/// with a line/column diagnostic). Trailing whitespace is allowed; any
/// other trailing content is an error.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Reads and parses a JSON file; throws Error when the file cannot be read.
[[nodiscard]] JsonValue parse_json_file(const std::string& path);

}  // namespace tsajs::exp
