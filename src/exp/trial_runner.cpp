#include "exp/trial_runner.h"

#include <mutex>

#include "algo/scheduler.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "jtora/compiled_problem.h"
#include "jtora/utility.h"

namespace tsajs::exp {

namespace {

struct TrialOutcome {
  double utility = 0.0;
  double solve_seconds = 0.0;
  double offloaded = 0.0;
  double mean_delay_s = 0.0;
  double mean_energy_j = 0.0;
};

TrialOutcome run_one(const jtora::CompiledProblem& problem,
                     const algo::Scheduler& scheduler, Rng& rng) {
  algo::SolveRequest request;
  request.problem = &problem;
  request.rng = &rng;
  algo::ScheduleResult result = algo::run_and_validate(scheduler, request);

  const jtora::UtilityEvaluator evaluator(problem);
  const jtora::Evaluation eval = evaluator.evaluate(result.assignment);

  TrialOutcome outcome;
  outcome.utility = result.system_utility;
  outcome.solve_seconds = result.solve_seconds;
  outcome.offloaded = static_cast<double>(result.assignment.num_offloaded());
  Accumulator delay;
  Accumulator energy;
  for (const auto& user : eval.users) {
    delay.add(user.total_delay_s);
    energy.add(user.energy_j);
  }
  outcome.mean_delay_s = delay.mean();
  outcome.mean_energy_j = energy.mean();
  return outcome;
}

}  // namespace

std::vector<SchemeStats> TrialRunner::run(const TrialSpec& spec) const {
  TSAJS_REQUIRE(spec.trials >= 1, "need at least one trial");
  TSAJS_REQUIRE(!spec.schemes.empty(), "need at least one scheme");

  // Instantiate schedulers once; schedule() is const and stateless.
  std::vector<std::unique_ptr<algo::Scheduler>> schedulers;
  schedulers.reserve(spec.schemes.size());
  for (const auto& name : spec.schemes) {
    schedulers.push_back(algo::make_scheduler(name, spec.options));
  }

  std::vector<SchemeStats> stats(spec.schemes.size());
  for (std::size_t i = 0; i < spec.schemes.size(); ++i) {
    stats[i].scheme = spec.schemes[i];
    // Slot per trial index, so the sample order is deterministic no matter
    // how the pool schedules trials.
    stats[i].solve_samples.assign(spec.trials, 0.0);
  }

  std::mutex merge_mutex;
  ThreadPool pool(num_threads_);
  pool.parallel_for(spec.trials, [&](std::size_t trial) {
    // Seeds derive from (base_seed, trial) only — independent of threading.
    SplitMix64 seeder(spec.base_seed + 0x9E3779B97F4A7C15ULL * (trial + 1));
    Rng scenario_rng(seeder.next());
    const mec::Scenario scenario = spec.builder.build(scenario_rng);
    // One compilation per drop; every scheme solves against the same
    // immutable tables instead of each recompiling the scenario.
    const jtora::CompiledProblem problem(scenario);

    std::vector<TrialOutcome> outcomes(schedulers.size());
    for (std::size_t i = 0; i < schedulers.size(); ++i) {
      Rng scheduler_rng(seeder.next());
      outcomes[i] = run_one(problem, *schedulers[i], scheduler_rng);
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t i = 0; i < schedulers.size(); ++i) {
      stats[i].utility.add(outcomes[i].utility);
      stats[i].solve_seconds.add(outcomes[i].solve_seconds);
      stats[i].solve_samples[trial] = outcomes[i].solve_seconds;
      stats[i].offloaded.add(outcomes[i].offloaded);
      stats[i].mean_delay_s.add(outcomes[i].mean_delay_s);
      stats[i].mean_energy_j.add(outcomes[i].mean_energy_j);
    }
  });
  return stats;
}

}  // namespace tsajs::exp
