// Hexagonal multi-cell layout.
//
// The paper evaluates "a multi-cellular network comprising several hexagonal
// cells, each centered around a base station", with an inter-site distance
// (ISD) of 1 km. We generate base-station sites on a hexagonal lattice in a
// spiral order (center first, then successive rings), which yields the
// compact S-cell deployments the paper uses (S = 4, S = 9, ...).
//
// Cells are flat-topped regular hexagons of circumradius R = ISD / sqrt(3),
// so that adjacent cell centers are exactly ISD apart.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "geo/point.h"

namespace tsajs::geo {

/// A hexagonal multi-cell deployment.
class HexLayout {
 public:
  /// Builds a layout with `num_cells` base stations on a hex lattice with the
  /// given inter-site distance [m]. Requires num_cells >= 1, isd > 0.
  HexLayout(std::size_t num_cells, double inter_site_distance_m);

  [[nodiscard]] std::size_t num_cells() const noexcept {
    return sites_.size();
  }
  [[nodiscard]] double inter_site_distance() const noexcept { return isd_; }

  /// Circumradius of one hexagonal cell [m] (= ISD / sqrt(3)).
  [[nodiscard]] double cell_radius() const noexcept;

  /// Base-station position of cell `s`.
  [[nodiscard]] Point site(std::size_t s) const;

  [[nodiscard]] const std::vector<Point>& sites() const noexcept {
    return sites_;
  }

  /// Index of the cell whose center is nearest to `p`.
  [[nodiscard]] std::size_t nearest_cell(Point p) const;

  /// Uniform sample inside the hexagon of cell `s`.
  [[nodiscard]] Point sample_in_cell(std::size_t s, Rng& rng) const;

  /// Uniform sample over the union of all cells (picks a cell uniformly,
  /// then a point inside it — cells are congruent so this is area-uniform).
  [[nodiscard]] Point sample_in_network(Rng& rng) const;

  /// True iff `p` lies inside (or on the boundary of) cell `s`'s hexagon.
  [[nodiscard]] bool contains(std::size_t s, Point p) const;

 private:
  double isd_;
  std::vector<Point> sites_;
};

}  // namespace tsajs::geo
