#include "geo/hex_layout.h"

#include <array>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace tsajs::geo {

namespace {

// Axial hex coordinate; flat-topped orientation.
struct Axial {
  int q = 0;
  int r = 0;
};

constexpr std::array<Axial, 6> kDirections{{
    {1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1},
}};

Point axial_to_point(Axial a, double circumradius) {
  const double x = circumradius * 1.5 * static_cast<double>(a.q);
  const double y = circumradius * std::sqrt(3.0) *
                   (static_cast<double>(a.r) + static_cast<double>(a.q) / 2.0);
  return {x, y};
}

// Generates hex lattice coordinates in spiral (ring) order: center first,
// then successive rings of 6·k cells.
std::vector<Axial> spiral(std::size_t count) {
  std::vector<Axial> cells;
  cells.reserve(count);
  cells.push_back({0, 0});
  for (int ring = 1; cells.size() < count; ++ring) {
    // Start at the cell `ring` steps in direction 4 from the center.
    Axial cur{kDirections[4].q * ring, kDirections[4].r * ring};
    for (const Axial dir : kDirections) {
      for (int step = 0; step < ring && cells.size() < count; ++step) {
        cells.push_back(cur);
        cur = {cur.q + dir.q, cur.r + dir.r};
      }
    }
  }
  return cells;
}

}  // namespace

HexLayout::HexLayout(std::size_t num_cells, double inter_site_distance_m)
    : isd_(inter_site_distance_m) {
  TSAJS_REQUIRE(num_cells >= 1, "a layout needs at least one cell");
  TSAJS_REQUIRE(inter_site_distance_m > 0.0,
                "inter-site distance must be positive");
  const double circumradius = cell_radius();
  sites_.reserve(num_cells);
  for (const Axial a : spiral(num_cells)) {
    sites_.push_back(axial_to_point(a, circumradius));
  }
}

double HexLayout::cell_radius() const noexcept {
  return isd_ / std::sqrt(3.0);
}

Point HexLayout::site(std::size_t s) const {
  TSAJS_REQUIRE(s < sites_.size(), "cell index out of range");
  return sites_[s];
}

std::size_t HexLayout::nearest_cell(Point p) const {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const double d2 = distance_squared(p, sites_[s]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = s;
    }
  }
  return best;
}

bool HexLayout::contains(std::size_t s, Point p) const {
  TSAJS_REQUIRE(s < sites_.size(), "cell index out of range");
  const double radius = cell_radius();
  const double dx = std::fabs(p.x - sites_[s].x);
  const double dy = std::fabs(p.y - sites_[s].y);
  const double sqrt3 = std::sqrt(3.0);
  constexpr double kSlack = 1e-9;
  return dy <= sqrt3 / 2.0 * radius + kSlack &&
         sqrt3 * dx + dy <= sqrt3 * radius + kSlack;
}

Point HexLayout::sample_in_cell(std::size_t s, Rng& rng) const {
  TSAJS_REQUIRE(s < sites_.size(), "cell index out of range");
  const double radius = cell_radius();
  const double half_height = std::sqrt(3.0) / 2.0 * radius;
  // Rejection sampling from the bounding box; acceptance probability 0.75.
  for (;;) {
    const Point candidate{sites_[s].x + rng.uniform(-radius, radius),
                          sites_[s].y + rng.uniform(-half_height, half_height)};
    if (contains(s, candidate)) return candidate;
  }
}

Point HexLayout::sample_in_network(Rng& rng) const {
  const auto cell = static_cast<std::size_t>(rng.uniform_index(sites_.size()));
  return sample_in_cell(cell, rng);
}

}  // namespace tsajs::geo
