// Interference-locality partitioning of cell sites.
//
// Co-channel interference couples only users that share a sub-band in
// nearby cells: the paper's link budget (Sec. V; path loss 140.7 + 36.7
// log10 d) attenuates a transmitter two inter-site distances away by
// ~11 dB relative to one ISD, and the interferer is itself power-limited —
// so beyond a configurable *reach* the coupling is negligible and a
// metro-scale deployment decomposes into independent shards (the same
// locality Tran & Pompili exploit for multi-cell TORA decomposition).
//
// `InterferencePartition` groups base-station sites into shards by laying a
// square tile grid of width `reach_m` over the deployment (anchored at the
// site bounding box's corner, so the partition is translation-invariant):
// sites in the same tile share a shard. Two sites closer than the reach are therefore
// either in one shard or in *adjacent* tiles — and every cell with a
// foreign-shard cell within reach is marked a *boundary* cell, whose users
// an inter-shard fixup must re-examine (algo::ShardedScheduler). Shard ids
// are compacted in lexicographic tile order, so the partition is a pure
// function of (sites, reach) — independent of iteration order, thread
// count, or platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace tsajs::geo {

class InterferencePartition {
 public:
  /// Partitions `sites` with the given interference reach [m]. Requires
  /// reach_m > 0 and at least one site.
  InterferencePartition(const std::vector<Point>& sites, double reach_m);

  [[nodiscard]] std::size_t num_cells() const noexcept {
    return shard_of_.size();
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] double reach_m() const noexcept { return reach_m_; }

  /// Shard id of cell `c` (cells are indexed as in the input site list).
  [[nodiscard]] std::size_t shard_of(std::size_t c) const;

  /// Cells of shard `k`, ascending cell index.
  [[nodiscard]] const std::vector<std::size_t>& cells(std::size_t k) const;

  /// True when some cell of a *different* shard lies within the reach of
  /// cell `c` — c's users can exchange non-negligible co-channel
  /// interference across the shard boundary.
  [[nodiscard]] bool is_boundary(std::size_t c) const;

  /// All boundary cells, ascending.
  [[nodiscard]] const std::vector<std::size_t>& boundary_cells()
      const noexcept {
    return boundary_cells_;
  }

  /// Shards adjacent to shard `k`: every shard owning a cell within reach
  /// of one of k's cells (exactly the shards k's boundary users can
  /// exchange non-negligible interference with). Ascending, excludes k.
  /// Symmetric: l in adjacent_shards(k) iff k in adjacent_shards(l).
  [[nodiscard]] const std::vector<std::size_t>& adjacent_shards(
      std::size_t k) const;

  /// Default reach for a deployment: twice the closest site spacing (ring-1
  /// neighbours interfere, ring-2 is down in the noise). Returns 0 for a
  /// single site (any positive reach yields one shard).
  [[nodiscard]] static double auto_reach(const std::vector<Point>& sites);

 private:
  double reach_m_ = 0.0;
  std::vector<std::size_t> shard_of_;
  std::vector<std::vector<std::size_t>> cells_;
  std::vector<std::uint8_t> boundary_;
  std::vector<std::size_t> boundary_cells_;
  std::vector<std::vector<std::size_t>> adjacent_;
};

}  // namespace tsajs::geo
