// 2-D geometry primitives for network layout.
#pragma once

#include <cmath>

namespace tsajs::geo {

/// A point (or vector) in the plane, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(double k, Point p) noexcept {
    return {k * p.x, k * p.y};
  }
  friend constexpr bool operator==(Point, Point) = default;
};

/// Euclidean distance between two points [m].
[[nodiscard]] inline double distance(Point a, Point b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Squared distance (avoids the sqrt when only comparing).
[[nodiscard]] constexpr double distance_squared(Point a, Point b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace tsajs::geo
