#include "geo/partition.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>

#include "common/error.h"

namespace tsajs::geo {

InterferencePartition::InterferencePartition(const std::vector<Point>& sites,
                                             double reach_m)
    : reach_m_(reach_m) {
  TSAJS_REQUIRE(!sites.empty(), "partition needs at least one site");
  TSAJS_REQUIRE(reach_m > 0.0 && std::isfinite(reach_m),
                "interference reach must be positive and finite");

  // Tile the plane with squares of side `reach_m`, anchored at the
  // deployment's bounding-box corner so the partition is translation-
  // invariant (and a reach wider than the deployment always yields one
  // shard); a map keyed by tile coordinates (lexicographic order) compacts
  // shard ids deterministically.
  double min_x = sites[0].x;
  double min_y = sites[0].y;
  for (const Point& site : sites) {
    min_x = std::min(min_x, site.x);
    min_y = std::min(min_y, site.y);
  }
  const auto tile_of = [reach_m, min_x, min_y](Point p) {
    return std::pair<std::int64_t, std::int64_t>(
        static_cast<std::int64_t>(std::floor((p.x - min_x) / reach_m)),
        static_cast<std::int64_t>(std::floor((p.y - min_y) / reach_m)));
  };
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> tiles;
  for (const Point& site : sites) {
    tiles.emplace(tile_of(site), 0);
  }
  std::size_t next_id = 0;
  for (auto& [tile, id] : tiles) id = next_id++;

  shard_of_.resize(sites.size());
  cells_.assign(next_id, {});
  for (std::size_t c = 0; c < sites.size(); ++c) {
    const std::size_t k = tiles.at(tile_of(sites[c]));
    shard_of_[c] = k;
    cells_[k].push_back(c);  // ascending: c is ascending
  }

  // Boundary cells and shard adjacency off the same O(C^2) site-pair scan:
  // a foreign-shard site within reach marks the cell as boundary *and*
  // links the two shards — hundreds of cells at city scale, negligible next
  // to one shard solve.
  boundary_.assign(sites.size(), 0);
  adjacent_.assign(next_id, {});
  const double reach_sq = reach_m * reach_m;
  for (std::size_t c = 0; c < sites.size(); ++c) {
    for (std::size_t d = 0; d < sites.size(); ++d) {
      if (shard_of_[d] == shard_of_[c]) continue;
      if (distance_squared(sites[c], sites[d]) <= reach_sq) {
        boundary_[c] = 1;
        adjacent_[shard_of_[c]].push_back(shard_of_[d]);
      }
    }
    if (boundary_[c] != 0) boundary_cells_.push_back(c);
  }
  for (std::vector<std::size_t>& neighbors : adjacent_) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
}

const std::vector<std::size_t>& InterferencePartition::adjacent_shards(
    std::size_t k) const {
  TSAJS_REQUIRE(k < adjacent_.size(), "shard index out of range");
  return adjacent_[k];
}

std::size_t InterferencePartition::shard_of(std::size_t c) const {
  TSAJS_REQUIRE(c < shard_of_.size(), "cell index out of range");
  return shard_of_[c];
}

const std::vector<std::size_t>& InterferencePartition::cells(
    std::size_t k) const {
  TSAJS_REQUIRE(k < cells_.size(), "shard index out of range");
  return cells_[k];
}

bool InterferencePartition::is_boundary(std::size_t c) const {
  TSAJS_REQUIRE(c < boundary_.size(), "cell index out of range");
  return boundary_[c] != 0;
}

double InterferencePartition::auto_reach(const std::vector<Point>& sites) {
  TSAJS_REQUIRE(!sites.empty(), "auto_reach needs at least one site");
  if (sites.size() == 1) return 0.0;
  double min_sq = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < sites.size(); ++a) {
    for (std::size_t b = a + 1; b < sites.size(); ++b) {
      min_sq = std::min(min_sq, distance_squared(sites[a], sites[b]));
    }
  }
  return 2.0 * std::sqrt(min_sq);
}

}  // namespace tsajs::geo
