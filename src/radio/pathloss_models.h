// Additional path-loss models beyond the paper's log-distance default.
//
// These let users of the library study how TSAJS behaves under different
// propagation assumptions (the what-if knobs a deployment study needs):
//
//  * TwoRayPathLoss       — dual-slope: free-space-like up to the breakpoint
//                           distance, fourth-power decay beyond it.
//  * ProbabilisticLosPathLoss — 3GPP-style mixture: each link is LOS with a
//                           distance-dependent probability and uses the LOS
//                           or NLOS sub-model accordingly. Stateless form:
//                           expected loss is blended by the LOS probability,
//                           keeping the model deterministic per distance
//                           (randomness stays in the shadowing term).
#pragma once

#include <memory>

#include "radio/pathloss.h"

namespace tsajs::radio {

/// Dual-slope two-ray ground-reflection model.
class TwoRayPathLoss final : public PathLossModel {
 public:
  /// `breakpoint_m` separates the n=2 and n=4 regimes; `intercept_db` is
  /// the loss at the breakpoint.
  TwoRayPathLoss(double intercept_db, double breakpoint_m,
                 double min_distance_m = 1.0);

  [[nodiscard]] double loss_db(double distance_m) const override;
  [[nodiscard]] std::unique_ptr<PathLossModel> clone() const override;

 private:
  double intercept_db_;
  double breakpoint_m_;
  double min_distance_m_;
};

/// 3GPP-UMa-style LOS/NLOS blend: L = p_los(d) * L_los(d) +
/// (1 - p_los(d)) * L_nlos(d), with p_los(d) = min(18/d, 1) * (1 - e^{-d/63})
/// + e^{-d/63} (TR 38.901 UMa shape).
class ProbabilisticLosPathLoss final : public PathLossModel {
 public:
  ProbabilisticLosPathLoss(std::unique_ptr<PathLossModel> los,
                           std::unique_ptr<PathLossModel> nlos);

  ProbabilisticLosPathLoss(const ProbabilisticLosPathLoss& other);

  [[nodiscard]] double loss_db(double distance_m) const override;
  [[nodiscard]] std::unique_ptr<PathLossModel> clone() const override;

  /// The TR 38.901 UMa LOS probability at ground distance `d` [m].
  [[nodiscard]] static double los_probability(double distance_m);

 private:
  std::unique_ptr<PathLossModel> los_;
  std::unique_ptr<PathLossModel> nlos_;
};

/// A UMa-flavoured blend built from the paper's NLOS constants and a
/// free-space-like LOS branch at 2 GHz.
[[nodiscard]] std::unique_ptr<PathLossModel> make_uma_blend_pathloss();

}  // namespace tsajs::radio
