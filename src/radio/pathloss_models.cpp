#include "radio/pathloss_models.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace tsajs::radio {

TwoRayPathLoss::TwoRayPathLoss(double intercept_db, double breakpoint_m,
                               double min_distance_m)
    : intercept_db_(intercept_db),
      breakpoint_m_(breakpoint_m),
      min_distance_m_(min_distance_m) {
  TSAJS_REQUIRE(breakpoint_m > 0.0, "breakpoint must be positive");
  TSAJS_REQUIRE(min_distance_m > 0.0, "minimum distance must be positive");
}

double TwoRayPathLoss::loss_db(double distance_m) const {
  TSAJS_REQUIRE(distance_m >= 0.0, "distance must be non-negative");
  const double d = std::max(distance_m, min_distance_m_);
  if (d <= breakpoint_m_) {
    // n = 2 below the breakpoint.
    return intercept_db_ + 20.0 * std::log10(d / breakpoint_m_);
  }
  // n = 4 beyond it.
  return intercept_db_ + 40.0 * std::log10(d / breakpoint_m_);
}

std::unique_ptr<PathLossModel> TwoRayPathLoss::clone() const {
  return std::make_unique<TwoRayPathLoss>(*this);
}

ProbabilisticLosPathLoss::ProbabilisticLosPathLoss(
    std::unique_ptr<PathLossModel> los, std::unique_ptr<PathLossModel> nlos)
    : los_(std::move(los)), nlos_(std::move(nlos)) {
  TSAJS_REQUIRE(los_ != nullptr && nlos_ != nullptr,
                "both LOS and NLOS sub-models are required");
}

ProbabilisticLosPathLoss::ProbabilisticLosPathLoss(
    const ProbabilisticLosPathLoss& other)
    : los_(other.los_->clone()), nlos_(other.nlos_->clone()) {}

double ProbabilisticLosPathLoss::los_probability(double distance_m) {
  TSAJS_REQUIRE(distance_m >= 0.0, "distance must be non-negative");
  if (distance_m <= 18.0) return 1.0;
  const double ratio = 18.0 / distance_m;
  const double decay = std::exp(-distance_m / 63.0);
  return ratio * (1.0 - decay) + decay;
}

double ProbabilisticLosPathLoss::loss_db(double distance_m) const {
  const double p = los_probability(distance_m);
  return p * los_->loss_db(distance_m) +
         (1.0 - p) * nlos_->loss_db(distance_m);
}

std::unique_ptr<PathLossModel> ProbabilisticLosPathLoss::clone() const {
  return std::make_unique<ProbabilisticLosPathLoss>(*this);
}

std::unique_ptr<PathLossModel> make_uma_blend_pathloss() {
  return std::make_unique<ProbabilisticLosPathLoss>(
      std::make_unique<FreeSpacePathLoss>(2.0e9),
      make_paper_pathloss());
}

}  // namespace tsajs::radio
