// Path-loss models.
//
// The paper's uplink channel uses a distance-dependent log-distance model,
// L[dB] = 140.7 + 36.7 * log10(d[km])  (the 3GPP UMa NLOS form at 2 GHz),
// combined with log-normal shadowing of 8 dB standard deviation. We expose
// the model behind a small interface so tests can substitute a free-space
// model and the scenario builder can be parameterized.
#pragma once

#include <memory>

namespace tsajs::radio {

/// Interface: average propagation loss as a function of distance.
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;

  /// Path loss in dB at the given link distance [m]. Implementations clamp
  /// tiny distances to a model-specific minimum to avoid singularities.
  [[nodiscard]] virtual double loss_db(double distance_m) const = 0;

  /// Polymorphic copy (scenarios own their model).
  [[nodiscard]] virtual std::unique_ptr<PathLossModel> clone() const = 0;
};

/// L[dB] = intercept + 10 * exponent * log10(d[km]); the paper's model is
/// LogDistancePathLoss(140.7, 3.67).
class LogDistancePathLoss final : public PathLossModel {
 public:
  /// `intercept_db` is the loss at 1 km; `exponent` the path-loss exponent.
  LogDistancePathLoss(double intercept_db, double exponent,
                      double min_distance_m = 10.0);

  [[nodiscard]] double loss_db(double distance_m) const override;
  [[nodiscard]] std::unique_ptr<PathLossModel> clone() const override;

  [[nodiscard]] double intercept_db() const noexcept { return intercept_db_; }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  double intercept_db_;
  double exponent_;
  double min_distance_m_;
};

/// Free-space path loss at a given carrier frequency (used in tests and as
/// an optimistic what-if model in examples).
class FreeSpacePathLoss final : public PathLossModel {
 public:
  explicit FreeSpacePathLoss(double carrier_hz, double min_distance_m = 1.0);

  [[nodiscard]] double loss_db(double distance_m) const override;
  [[nodiscard]] std::unique_ptr<PathLossModel> clone() const override;

 private:
  double carrier_hz_;
  double min_distance_m_;
};

/// The exact model from the paper's evaluation section.
[[nodiscard]] std::unique_ptr<PathLossModel> make_paper_pathloss();

}  // namespace tsajs::radio
