#include "radio/pathloss.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace tsajs::radio {

LogDistancePathLoss::LogDistancePathLoss(double intercept_db, double exponent,
                                         double min_distance_m)
    : intercept_db_(intercept_db),
      exponent_(exponent),
      min_distance_m_(min_distance_m) {
  TSAJS_REQUIRE(exponent > 0.0, "path-loss exponent must be positive");
  TSAJS_REQUIRE(min_distance_m > 0.0, "minimum distance must be positive");
}

double LogDistancePathLoss::loss_db(double distance_m) const {
  TSAJS_REQUIRE(distance_m >= 0.0, "distance must be non-negative");
  const double d_km = std::max(distance_m, min_distance_m_) / 1000.0;
  return intercept_db_ + 10.0 * exponent_ * std::log10(d_km);
}

std::unique_ptr<PathLossModel> LogDistancePathLoss::clone() const {
  return std::make_unique<LogDistancePathLoss>(*this);
}

FreeSpacePathLoss::FreeSpacePathLoss(double carrier_hz, double min_distance_m)
    : carrier_hz_(carrier_hz), min_distance_m_(min_distance_m) {
  TSAJS_REQUIRE(carrier_hz > 0.0, "carrier frequency must be positive");
  TSAJS_REQUIRE(min_distance_m > 0.0, "minimum distance must be positive");
}

double FreeSpacePathLoss::loss_db(double distance_m) const {
  TSAJS_REQUIRE(distance_m >= 0.0, "distance must be non-negative");
  const double d = std::max(distance_m, min_distance_m_);
  // FSPL[dB] = 20 log10(d) + 20 log10(f) - 147.55  (d in m, f in Hz)
  return 20.0 * std::log10(d) + 20.0 * std::log10(carrier_hz_) - 147.55;
}

std::unique_ptr<PathLossModel> FreeSpacePathLoss::clone() const {
  return std::make_unique<FreeSpacePathLoss>(*this);
}

std::unique_ptr<PathLossModel> make_paper_pathloss() {
  // L[dB] = 140.7 + 36.7 log10(d[km])  (Sec. V of the paper).
  return std::make_unique<LogDistancePathLoss>(140.7, 3.67);
}

}  // namespace tsajs::radio
