// OFDMA uplink spectrum descriptor.
//
// The paper divides the total system bandwidth B into N orthogonal sub-bands
// of equal width W = B/N; each base station can serve at most one user per
// sub-band, and same-sub-band users of *different* cells interfere (Eq. 3).
#pragma once

#include <cstddef>

#include "common/error.h"

namespace tsajs::radio {

class Spectrum {
 public:
  /// `bandwidth_hz` = B, `num_subchannels` = N. Requires both positive.
  Spectrum(double bandwidth_hz, std::size_t num_subchannels)
      : bandwidth_hz_(bandwidth_hz), num_subchannels_(num_subchannels) {
    TSAJS_REQUIRE(bandwidth_hz > 0.0, "bandwidth must be positive");
    TSAJS_REQUIRE(num_subchannels >= 1, "need at least one sub-channel");
  }

  [[nodiscard]] double bandwidth_hz() const noexcept { return bandwidth_hz_; }
  [[nodiscard]] std::size_t num_subchannels() const noexcept {
    return num_subchannels_;
  }

  /// Per-sub-band width W = B / N [Hz].
  [[nodiscard]] double subchannel_bandwidth_hz() const noexcept {
    return bandwidth_hz_ / static_cast<double>(num_subchannels_);
  }

 private:
  double bandwidth_hz_;
  std::size_t num_subchannels_;
};

}  // namespace tsajs::radio
