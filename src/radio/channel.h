// Uplink channel-gain generation.
//
// Produces the channel-gain tensor H[u][s][j] (user u -> base station s on
// sub-channel j, linear power gain) from user/BS geometry:
//
//   H = 10^(-(PL(d_us) + X_us) / 10) * F_us^j
//
// where PL is the path-loss model, X_us ~ N(0, sigma_shadow^2) dB is
// log-normal shadowing (drawn once per link — the paper averages out fast
// fading over the long-term association timescale), and F_us^j is optional
// per-sub-channel Rayleigh fading (disabled by default to match the paper;
// kept as an extension knob and exercised by ablation benches).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "geo/point.h"
#include "radio/pathloss.h"

namespace tsajs::radio {

struct ChannelConfig {
  /// Log-normal shadowing standard deviation [dB]; paper: 8 dB.
  double shadowing_sigma_db = 8.0;
  /// When true, multiplies each (u, s, j) gain by an independent
  /// unit-mean exponential (Rayleigh power) fading coefficient.
  bool rayleigh_fading = false;
};

/// Memoized deterministic path loss for a fixed population of users against
/// a fixed set of base stations, keyed by a *stable* user id (not the row
/// index of one epoch's active subset). ChannelModel::regenerate_into
/// consults it so that per-epoch channel redraws only re-evaluate the
/// path-loss model for users whose position actually changed — under
/// random-walk mobility a user that rejected every step keeps its exact
/// position and therefore its cached row.
class PathLossCache {
 public:
  PathLossCache() = default;

  /// Sizes the cache for `num_ids` stable user ids × `num_bs` base stations
  /// and invalidates every row. Base-station geometry is assumed fixed for
  /// the cache's lifetime.
  void reset(std::size_t num_ids, std::size_t num_bs) {
    loss_db_ = Matrix2<double>(num_ids, num_bs, 0.0);
    position_.assign(num_ids, geo::Point{});
    valid_.assign(num_ids, 0);
  }

  [[nodiscard]] std::size_t num_ids() const noexcept {
    return position_.size();
  }
  [[nodiscard]] std::size_t num_bs() const noexcept { return loss_db_.cols(); }

 private:
  friend class ChannelModel;
  Matrix2<double> loss_db_;          ///< (id, bs) path loss [dB]
  std::vector<geo::Point> position_;  ///< position the row was computed at
  std::vector<char> valid_;
};

/// Generates channel gains for a deployment snapshot.
class ChannelModel {
 public:
  ChannelModel(std::unique_ptr<PathLossModel> pathloss, ChannelConfig config);

  ChannelModel(const ChannelModel& other);
  ChannelModel& operator=(const ChannelModel& other);
  ChannelModel(ChannelModel&&) noexcept = default;
  ChannelModel& operator=(ChannelModel&&) noexcept = default;

  /// Linear power gains, indexed (user, bs, subchannel).
  [[nodiscard]] Matrix3<double> generate(
      const std::vector<geo::Point>& user_positions,
      const std::vector<geo::Point>& bs_positions,
      std::size_t num_subchannels, Rng& rng) const;

  /// Draws a fresh set of gains *into* `out`, reshaping it in place so the
  /// tensor's allocation is reused across calls (the per-epoch hot path of
  /// sim::DynamicSimulator). Consumes exactly the same RNG stream as
  /// generate(), so the two are bit-for-bit interchangeable.
  ///
  /// With a `cache`, the deterministic path-loss term is memoized per user:
  /// `user_ids[u]` names the stable identity of row `u` (pass nullptr when
  /// row indices are themselves stable), and only rows whose position
  /// changed since their last draw re-evaluate the path-loss model. The
  /// shadowing/fading draws are unconditionally redrawn either way — the
  /// cache never changes results, only skips deterministic recomputation.
  void regenerate_into(const std::vector<geo::Point>& user_positions,
                       const std::vector<geo::Point>& bs_positions,
                       std::size_t num_subchannels, Rng& rng,
                       Matrix3<double>& out, PathLossCache* cache = nullptr,
                       const std::vector<std::size_t>* user_ids =
                           nullptr) const;

  /// Deterministic mean gain of a single link (no shadowing/fading); used by
  /// tests and by the Greedy baseline's "strongest signal" ordering intuition.
  [[nodiscard]] double mean_gain(geo::Point user, geo::Point bs) const;

  [[nodiscard]] const ChannelConfig& config() const noexcept {
    return config_;
  }

 private:
  std::unique_ptr<PathLossModel> pathloss_;
  ChannelConfig config_;
};

/// Channel model with the paper's parameters (140.7 + 36.7 log10 d, 8 dB).
[[nodiscard]] ChannelModel make_paper_channel();

}  // namespace tsajs::radio
