// Uplink channel-gain generation.
//
// Produces the channel-gain tensor H[u][s][j] (user u -> base station s on
// sub-channel j, linear power gain) from user/BS geometry:
//
//   H = 10^(-(PL(d_us) + X_us) / 10) * F_us^j
//
// where PL is the path-loss model, X_us ~ N(0, sigma_shadow^2) dB is
// log-normal shadowing (drawn once per link — the paper averages out fast
// fading over the long-term association timescale), and F_us^j is optional
// per-sub-channel Rayleigh fading (disabled by default to match the paper;
// kept as an extension knob and exercised by ablation benches).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "geo/point.h"
#include "radio/pathloss.h"

namespace tsajs::radio {

struct ChannelConfig {
  /// Log-normal shadowing standard deviation [dB]; paper: 8 dB.
  double shadowing_sigma_db = 8.0;
  /// When true, multiplies each (u, s, j) gain by an independent
  /// unit-mean exponential (Rayleigh power) fading coefficient.
  bool rayleigh_fading = false;
};

/// Generates channel gains for a deployment snapshot.
class ChannelModel {
 public:
  ChannelModel(std::unique_ptr<PathLossModel> pathloss, ChannelConfig config);

  ChannelModel(const ChannelModel& other);
  ChannelModel& operator=(const ChannelModel& other);
  ChannelModel(ChannelModel&&) noexcept = default;
  ChannelModel& operator=(ChannelModel&&) noexcept = default;

  /// Linear power gains, indexed (user, bs, subchannel).
  [[nodiscard]] Matrix3<double> generate(
      const std::vector<geo::Point>& user_positions,
      const std::vector<geo::Point>& bs_positions,
      std::size_t num_subchannels, Rng& rng) const;

  /// Deterministic mean gain of a single link (no shadowing/fading); used by
  /// tests and by the Greedy baseline's "strongest signal" ordering intuition.
  [[nodiscard]] double mean_gain(geo::Point user, geo::Point bs) const;

  [[nodiscard]] const ChannelConfig& config() const noexcept {
    return config_;
  }

 private:
  std::unique_ptr<PathLossModel> pathloss_;
  ChannelConfig config_;
};

/// Channel model with the paper's parameters (140.7 + 36.7 log10 d, 8 dB).
[[nodiscard]] ChannelModel make_paper_channel();

}  // namespace tsajs::radio
