#include "radio/channel.h"

#include "common/error.h"
#include "common/units.h"

namespace tsajs::radio {

ChannelModel::ChannelModel(std::unique_ptr<PathLossModel> pathloss,
                           ChannelConfig config)
    : pathloss_(std::move(pathloss)), config_(config) {
  TSAJS_REQUIRE(pathloss_ != nullptr, "a path-loss model is required");
  TSAJS_REQUIRE(config.shadowing_sigma_db >= 0.0,
                "shadowing sigma must be non-negative");
}

ChannelModel::ChannelModel(const ChannelModel& other)
    : pathloss_(other.pathloss_->clone()), config_(other.config_) {}

ChannelModel& ChannelModel::operator=(const ChannelModel& other) {
  if (this != &other) {
    pathloss_ = other.pathloss_->clone();
    config_ = other.config_;
  }
  return *this;
}

Matrix3<double> ChannelModel::generate(
    const std::vector<geo::Point>& user_positions,
    const std::vector<geo::Point>& bs_positions, std::size_t num_subchannels,
    Rng& rng) const {
  Matrix3<double> gains;
  regenerate_into(user_positions, bs_positions, num_subchannels, rng, gains);
  return gains;
}

void ChannelModel::regenerate_into(
    const std::vector<geo::Point>& user_positions,
    const std::vector<geo::Point>& bs_positions, std::size_t num_subchannels,
    Rng& rng, Matrix3<double>& out, PathLossCache* cache,
    const std::vector<std::size_t>* user_ids) const {
  TSAJS_REQUIRE(num_subchannels >= 1, "need at least one sub-channel");
  const std::size_t num_users = user_positions.size();
  const std::size_t num_bs = bs_positions.size();
  if (user_ids != nullptr) {
    TSAJS_REQUIRE(user_ids->size() == num_users,
                  "need one stable id per user row");
  }
  if (cache != nullptr) {
    TSAJS_REQUIRE(cache->num_bs() == num_bs,
                  "path-loss cache sized for a different station set");
  }
  out.reshape(num_users, num_bs, num_subchannels);
  for (std::size_t u = 0; u < num_users; ++u) {
    const double* loss_row = nullptr;
    if (cache != nullptr && num_bs > 0) {
      const std::size_t id = user_ids != nullptr ? (*user_ids)[u] : u;
      TSAJS_REQUIRE(id < cache->num_ids(), "stable user id out of range");
      if (cache->valid_[id] == 0 ||
          !(cache->position_[id] == user_positions[u])) {
        for (std::size_t s = 0; s < num_bs; ++s) {
          cache->loss_db_(id, s) = pathloss_->loss_db(
              geo::distance(user_positions[u], bs_positions[s]));
        }
        cache->position_[id] = user_positions[u];
        cache->valid_[id] = 1;
      }
      loss_row = &cache->loss_db_(id, 0);
    }
    for (std::size_t s = 0; s < num_bs; ++s) {
      const double pl_db =
          loss_row != nullptr
              ? loss_row[s]
              : pathloss_->loss_db(
                    geo::distance(user_positions[u], bs_positions[s]));
      const double shadow_db = rng.normal(0.0, config_.shadowing_sigma_db);
      const double link_gain = units::db_to_linear(-(pl_db + shadow_db));
      for (std::size_t j = 0; j < num_subchannels; ++j) {
        const double fading =
            config_.rayleigh_fading ? rng.exponential(1.0) : 1.0;
        out(u, s, j) = link_gain * fading;
      }
    }
  }
}

double ChannelModel::mean_gain(geo::Point user, geo::Point bs) const {
  return units::db_to_linear(-pathloss_->loss_db(geo::distance(user, bs)));
}

ChannelModel make_paper_channel() {
  return ChannelModel(make_paper_pathloss(), ChannelConfig{});
}

}  // namespace tsajs::radio
