#include "radio/channel.h"

#include "common/error.h"
#include "common/units.h"

namespace tsajs::radio {

ChannelModel::ChannelModel(std::unique_ptr<PathLossModel> pathloss,
                           ChannelConfig config)
    : pathloss_(std::move(pathloss)), config_(config) {
  TSAJS_REQUIRE(pathloss_ != nullptr, "a path-loss model is required");
  TSAJS_REQUIRE(config.shadowing_sigma_db >= 0.0,
                "shadowing sigma must be non-negative");
}

ChannelModel::ChannelModel(const ChannelModel& other)
    : pathloss_(other.pathloss_->clone()), config_(other.config_) {}

ChannelModel& ChannelModel::operator=(const ChannelModel& other) {
  if (this != &other) {
    pathloss_ = other.pathloss_->clone();
    config_ = other.config_;
  }
  return *this;
}

Matrix3<double> ChannelModel::generate(
    const std::vector<geo::Point>& user_positions,
    const std::vector<geo::Point>& bs_positions, std::size_t num_subchannels,
    Rng& rng) const {
  TSAJS_REQUIRE(num_subchannels >= 1, "need at least one sub-channel");
  const std::size_t num_users = user_positions.size();
  const std::size_t num_bs = bs_positions.size();
  Matrix3<double> gains(num_users, num_bs, num_subchannels, 0.0);
  for (std::size_t u = 0; u < num_users; ++u) {
    for (std::size_t s = 0; s < num_bs; ++s) {
      const double pl_db =
          pathloss_->loss_db(geo::distance(user_positions[u], bs_positions[s]));
      const double shadow_db = rng.normal(0.0, config_.shadowing_sigma_db);
      const double link_gain = units::db_to_linear(-(pl_db + shadow_db));
      for (std::size_t j = 0; j < num_subchannels; ++j) {
        const double fading =
            config_.rayleigh_fading ? rng.exponential(1.0) : 1.0;
        gains(u, s, j) = link_gain * fading;
      }
    }
  }
  return gains;
}

double ChannelModel::mean_gain(geo::Point user, geo::Point bs) const {
  return units::db_to_linear(-pathloss_->loss_db(geo::distance(user, bs)));
}

ChannelModel make_paper_channel() {
  return ChannelModel(make_paper_pathloss(), ChannelConfig{});
}

}  // namespace tsajs::radio
