#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace tsajs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<std::ostream*> g_sink{nullptr};
std::mutex g_emit_mutex;
}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }
void set_log_sink(std::ostream* sink) noexcept { g_sink.store(sink); }

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  std::string path(file);
  const auto slash = path.find_last_of('/');
  stream_ << '[' << log_level_name(level) << "] "
          << (slash == std::string::npos ? path : path.substr(slash + 1))
          << ':' << line << ": ";
}

LogMessage::~LogMessage() {
  std::ostream* sink = g_sink.load();
  std::ostream& os = sink != nullptr ? *sink : std::cerr;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  os << stream_.str() << '\n';
  (void)level_;
}

}  // namespace detail
}  // namespace tsajs
