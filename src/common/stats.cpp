#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace tsajs {

void Accumulator::add(double x) {
  // One NaN would silently poison the running mean/variance and every
  // later sample; reject it at the door instead.
  TSAJS_CHECK(!std::isnan(x), "Accumulator::add rejects NaN samples");
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double Accumulator::sum() const noexcept {
  return mean_ * static_cast<double>(count_);
}

namespace {

// Two-sided 95% and 99% Student-t critical values for small dof.
constexpr double kT95[] = {
    0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
    2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
    2.042};
constexpr double kT99[] = {
    0,      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
    3.169,  3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861,
    2.845,  2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756,
    2.750};

// Acklam-style inverse normal CDF (sufficient accuracy for CI reporting).
double inverse_normal_cdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  TSAJS_REQUIRE(p > 0.0 && p < 1.0, "inverse normal CDF domain is (0,1)");
  if (p < p_low) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - p_low) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

double student_t_critical(std::size_t dof, double confidence) {
  TSAJS_REQUIRE(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  TSAJS_REQUIRE(dof >= 1, "Student-t requires dof >= 1");
  const bool is95 = std::fabs(confidence - 0.95) < 1e-9;
  const bool is99 = std::fabs(confidence - 0.99) < 1e-9;
  if (dof <= 30 && (is95 || is99)) {
    return (is95 ? kT95 : kT99)[dof];
  }
  // Normal approximation with the Cornish–Fisher dof correction.
  const double z = inverse_normal_cdf(0.5 + confidence / 2.0);
  const auto v = static_cast<double>(dof);
  return z + (z * z * z + z) / (4.0 * v);
}

ConfidenceInterval confidence_interval(const Accumulator& acc,
                                       double confidence) {
  ConfidenceInterval ci;
  ci.mean = acc.mean();
  if (acc.count() < 2) return ci;
  ci.half_width =
      student_t_critical(acc.count() - 1, confidence) * acc.stderr_mean();
  return ci;
}

double quantile(std::vector<double> samples, double q) {
  TSAJS_REQUIRE(!samples.empty(), "quantile of an empty sample");
  TSAJS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace tsajs
