#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace tsajs {

P2Quantile::P2Quantile(double q) : q_(q) {
  TSAJS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
}

void P2Quantile::init_markers() noexcept {
  // Jain & Chlamtac's initial state once five samples are in: markers sit
  // on the sorted samples at ranks 1..5; desired positions spread them at
  // {min, q/2, q, (1+q)/2, max} of the growing sample.
  for (int i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double x) {
  TSAJS_CHECK(!std::isnan(x), "P2Quantile::add rejects NaN samples");
  if (count_ < 5) {
    // Warm-up: keep the raw samples sorted in place.
    std::size_t i = count_;
    while (i > 0 && heights_[i - 1] > x) {
      heights_[i] = heights_[i - 1];
      --i;
    }
    heights_[i] = x;
    ++count_;
    if (count_ == 5) init_markers();
    return;
  }

  // Locate the cell and clamp the extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && heights_[k + 1] <= x) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) height update, falling back to linear
  // interpolation when the parabola would leave the bracketing heights.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double np = positions_[i + 1] - positions_[i];
      const double nm = positions_[i - 1] - positions_[i];
      const double parabolic =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + s) *
                   (heights_[i + 1] - heights_[i]) / np +
               (positions_[i + 1] - positions_[i] - s) *
                   (heights_[i] - heights_[i - 1]) / (-nm));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
  ++count_;
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ <= 5) {
    // Exact interpolated quantile over the sorted warm-up samples (same
    // convention as tsajs::quantile).
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= count_) return heights_[count_ - 1];
    return heights_[lo] * (1.0 - frac) + heights_[lo + 1] * frac;
  }
  return heights_[2];
}

namespace {

/// Piecewise-linear empirical CDF readout of a P² marker state: returns
/// the estimated number of samples <= x given marker (height, rank) pairs.
double marker_cdf(const double* heights, const double* positions,
                  std::size_t n_markers, double total, double x) noexcept {
  if (x < heights[0]) return 0.0;
  if (x >= heights[n_markers - 1]) return total;
  std::size_t i = 0;
  while (i + 1 < n_markers && heights[i + 1] <= x) ++i;
  const double span = heights[i + 1] - heights[i];
  const double frac = span > 0.0 ? (x - heights[i]) / span : 0.0;
  return positions[i] + frac * (positions[i + 1] - positions[i]);
}

}  // namespace

void P2Quantile::merge(const P2Quantile& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // A side still in warm-up holds its raw samples exactly — replay them.
  if (other.count_ <= 5) {
    for (std::size_t i = 0; i < other.count_; ++i) add(other.heights_[i]);
    return;
  }
  if (count_ <= 5) {
    P2Quantile combined = other;
    for (std::size_t i = 0; i < count_; ++i) combined.add(heights_[i]);
    *this = combined;
    return;
  }

  // Both sides carry five-marker sketches. Sum the two piecewise-linear
  // CDFs and invert the sum at this sketch's desired marker ranks for the
  // combined count. Deterministic: a pure function of the two states.
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double total = n1 + n2;
  const double lo = std::min(heights_[0], other.heights_[0]);
  const double hi = std::max(heights_[4], other.heights_[4]);

  // Candidate breakpoints: both marker sets, sorted. Between consecutive
  // breakpoints the combined CDF is linear, so inversion per target rank is
  // a scan plus one interpolation.
  double xs[10];
  for (int i = 0; i < 5; ++i) {
    xs[i] = heights_[i];
    xs[5 + i] = other.heights_[i];
  }
  std::sort(std::begin(xs), std::end(xs));
  double cdf[10];
  for (int i = 0; i < 10; ++i) {
    cdf[i] = marker_cdf(heights_, positions_, 5, n1, xs[i]) +
             marker_cdf(other.heights_, other.positions_, 5, n2, xs[i]);
  }

  double merged[5];
  double targets[5];
  targets[0] = 1.0;
  targets[1] = 1.0 + (total - 1.0) * (q_ / 2.0);
  targets[2] = 1.0 + (total - 1.0) * q_;
  targets[3] = 1.0 + (total - 1.0) * ((1.0 + q_) / 2.0);
  targets[4] = total;
  merged[0] = lo;
  merged[4] = hi;
  for (int m = 1; m <= 3; ++m) {
    const double t = targets[m];
    double v = hi;
    for (int i = 0; i + 1 < 10; ++i) {
      if (cdf[i + 1] < t) continue;
      const double span = cdf[i + 1] - cdf[i];
      const double frac = span > 0.0 ? (t - cdf[i]) / span : 0.0;
      v = xs[i] + frac * (xs[i + 1] - xs[i]);
      break;
    }
    merged[m] = std::min(std::max(v, lo), hi);
  }
  // Enforce monotone heights (the inversion can tie under flat CDF spans).
  for (int i = 1; i < 5; ++i) merged[i] = std::max(merged[i], merged[i - 1]);

  count_ = static_cast<std::size_t>(total);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = merged[i];
    positions_[i] = targets[i];
    desired_[i] = targets[i];
  }
  // Increments are invariant (a function of q_ alone); keep them as set by
  // init_markers on whichever side initialized first.
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void Accumulator::add(double x) {
  // One NaN would silently poison the running mean/variance and every
  // later sample; reject it at the door instead.
  TSAJS_CHECK(!std::isnan(x), "Accumulator::add rejects NaN samples");
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  p50_.add(x);
  p99_.add(x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  p50_.merge(other.p50_);
  p99_.merge(other.p99_);
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double Accumulator::sum() const noexcept {
  return mean_ * static_cast<double>(count_);
}

namespace {

// Two-sided 95% and 99% Student-t critical values for small dof.
constexpr double kT95[] = {
    0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
    2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
    2.042};
constexpr double kT99[] = {
    0,      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
    3.169,  3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861,
    2.845,  2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756,
    2.750};

// Acklam-style inverse normal CDF (sufficient accuracy for CI reporting).
double inverse_normal_cdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  TSAJS_REQUIRE(p > 0.0 && p < 1.0, "inverse normal CDF domain is (0,1)");
  if (p < p_low) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - p_low) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

double student_t_critical(std::size_t dof, double confidence) {
  TSAJS_REQUIRE(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  TSAJS_REQUIRE(dof >= 1, "Student-t requires dof >= 1");
  const bool is95 = std::fabs(confidence - 0.95) < 1e-9;
  const bool is99 = std::fabs(confidence - 0.99) < 1e-9;
  if (dof <= 30 && (is95 || is99)) {
    return (is95 ? kT95 : kT99)[dof];
  }
  // Normal approximation with the Cornish–Fisher dof correction.
  const double z = inverse_normal_cdf(0.5 + confidence / 2.0);
  const auto v = static_cast<double>(dof);
  return z + (z * z * z + z) / (4.0 * v);
}

ConfidenceInterval confidence_interval(const Accumulator& acc,
                                       double confidence) {
  ConfidenceInterval ci;
  ci.mean = acc.mean();
  if (acc.count() < 2) return ci;
  ci.half_width =
      student_t_critical(acc.count() - 1, confidence) * acc.stderr_mean();
  return ci;
}

double quantile(std::vector<double> samples, double q) {
  TSAJS_REQUIRE(!samples.empty(), "quantile of an empty sample");
  TSAJS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace tsajs
