#include "common/units.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace tsajs::units {

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) {
  TSAJS_REQUIRE(linear > 0.0, "dB conversion requires a positive ratio");
  return 10.0 * std::log10(linear);
}

double dbm_to_watts(double dbm) noexcept {
  return db_to_linear(dbm) * 1e-3;
}

double watts_to_dbm(double watts) {
  TSAJS_REQUIRE(watts > 0.0, "dBm conversion requires positive power");
  return linear_to_db(watts / 1e-3);
}

namespace {

struct SiScale {
  double factor;
  const char* prefix;
};

constexpr SiScale kScales[] = {
    {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
    {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
};

}  // namespace

std::string si_string(double value, const std::string& unit, int precision) {
  std::ostringstream os;
  if (value == 0.0 || !std::isfinite(value)) {
    os << value << ' ' << unit;
    return os.str();
  }
  const double mag = std::fabs(value);
  for (const auto& scale : kScales) {
    if (mag >= scale.factor) {
      os << std::setprecision(precision) << value / scale.factor << ' '
         << scale.prefix << unit;
      return os.str();
    }
  }
  os << std::setprecision(precision) << value << ' ' << unit;
  return os.str();
}

std::string duration_string(double seconds, int precision) {
  return si_string(seconds, "s", precision);
}

}  // namespace tsajs::units
