// Unit conversions used throughout the radio and MEC models.
//
// All internal computation is carried out in linear SI units (watts, hertz,
// bits, seconds, CPU cycles). Decibel quantities appear only at the
// configuration boundary, mirroring how the paper states its parameters
// (p_u = 10 dBm, sigma^2 = -100 dBm, path loss in dB).
#pragma once

#include <cstdint>
#include <string>

namespace tsajs::units {

/// Converts a power ratio expressed in decibels to a linear ratio.
[[nodiscard]] double db_to_linear(double db) noexcept;

/// Converts a linear power ratio to decibels. Requires `linear > 0`.
[[nodiscard]] double linear_to_db(double linear);

/// Converts a power in dBm (decibel-milliwatts) to watts.
[[nodiscard]] double dbm_to_watts(double dbm) noexcept;

/// Converts a power in watts to dBm. Requires `watts > 0`.
[[nodiscard]] double watts_to_dbm(double watts);

// --- Convenience literals for the paper's parameter magnitudes. -----------

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

/// Bits in `kb` kilobytes (KB = 1000 bytes; the paper's 420 KB input).
[[nodiscard]] constexpr double kilobytes_to_bits(double kb) noexcept {
  return kb * 1000.0 * 8.0;
}

/// CPU cycles in `mc` Megacycles (the unit used by the paper's figures).
[[nodiscard]] constexpr double megacycles_to_cycles(double mc) noexcept {
  return mc * kMega;
}

/// Formats a value with an SI suffix, e.g. 20e9 -> "20 G". Used by reports.
[[nodiscard]] std::string si_string(double value, const std::string& unit,
                                    int precision = 3);

/// Formats a duration in seconds with an adaptive unit (s / ms / us / ns).
[[nodiscard]] std::string duration_string(double seconds, int precision = 3);

}  // namespace tsajs::units
