// Cooperative cancellation + a deadline monitor.
//
// A solver that honors an anytime budget checks it at safe points (plateau
// boundaries); that protects against *expected* workloads but not against a
// solve that stalls between checks or mis-estimates its own cost. The
// watchdog closes that gap without preemption:
//
//   * CancelToken — a shared atomic flag. The owner hands `&token` to a
//     solve (SolveRequest::cancel); the solver polls `cancelled()` at the
//     same safe points where it checks its budget and returns its best
//     feasible result so far when the flag is set. Setting the flag never
//     interrupts anything mid-mutation — cancellation is always observed at
//     a point where the current best is a valid answer.
//   * Watchdog — one background thread monitoring any number of armed
//     deadlines. `arm(token, seconds)` schedules `token.cancel()` at
//     now + seconds; `disarm(id)` retires the entry (fired or not). Arming
//     and disarming are cheap (mutex + condition variable), so wrapping
//     every per-shard solve of a large decomposition is practical.
//
// Determinism note: wall-clock cancellation is inherently timing-dependent
// — it belongs to wall-clock budget mode, which was never bit-stable.
// Deterministic (iteration-budget) pipelines must make cancellation
// decisions from iteration counts instead and use CancelToken only as the
// transport (see ShardedScheduler's hedged retries).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace tsajs {

/// Shared cancellation flag. Thread-safe; `cancel()` is sticky until
/// `reset()`.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Background deadline monitor: cancels armed tokens when their deadlines
/// pass. One instance serves any number of concurrent arms.
class Watchdog {
 public:
  Watchdog();
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Schedules `token.cancel()` at now + `seconds` (clamped to >= 0, so a
  /// non-positive deadline fires immediately). The token must outlive the
  /// entry — keep it alive until disarm(). Returns the entry id.
  std::uint64_t arm(CancelToken& token, double seconds);

  /// Retires an armed entry. Safe to call after the deadline fired (the
  /// token stays cancelled — disarm never un-cancels). Unknown ids are
  /// ignored, so callers may disarm unconditionally on their exit paths.
  void disarm(std::uint64_t id);

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point deadline;
    CancelToken* token = nullptr;
  };

  void run();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace tsajs
