// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte buffers.
//
// Used as the integrity trailer on durable artifacts (stream checkpoints):
// a crash mid-write leaves a file whose trailer does not match its body,
// which the reader detects and skips instead of loading torn state. The
// implementation is the classic 256-entry table; the table is built once at
// first use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tsajs {

/// CRC-32 of `data`; chainable via `seed` (pass a previous call's result to
/// continue a running checksum). The empty buffer maps to 0.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32(std::string_view text,
                                         std::uint32_t seed = 0) noexcept {
  return crc32(text.data(), text.size(), seed);
}

}  // namespace tsajs
