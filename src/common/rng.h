// Deterministic random-number generation.
//
// Every stochastic component of the simulator (user placement, shadowing,
// the annealer's proposal/acceptance draws, Monte-Carlo trials) draws from a
// `Rng` seeded explicitly by the caller, so that every experiment in
// EXPERIMENTS.md is bit-reproducible. The generator is xoshiro256**, seeded
// through SplitMix64 per the reference recommendation; we avoid
// std::mt19937 + std::*_distribution because their output is not portable
// across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace tsajs {

/// SplitMix64: used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds (e.g. one per Monte-Carlo trial).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 with distribution helpers.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be plugged
/// into <algorithm> facilities such as std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Distinct seeds yield independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x2545F4914F6CDD1DULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next_u64(); }
  result_type next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box–Muller with caching).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential deviate with the given rate (rate > 0).
  double exponential(double rate);

  /// Bernoulli draw with probability `p` of returning true (p in [0,1]).
  bool bernoulli(double p);

  /// Derives a child seed; children of distinct indices are independent.
  std::uint64_t derive_seed(std::uint64_t stream_index) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tsajs
