#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace tsajs {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
  // xoshiro256** must not be seeded with the all-zero state; SplitMix64
  // cannot produce four consecutive zeros, so state_ is already valid.
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TSAJS_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  TSAJS_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TSAJS_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 on full range
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. uniform() can return exactly 0; shift into (0, 1].
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  TSAJS_REQUIRE(sigma >= 0.0, "normal() requires sigma >= 0");
  return mean + sigma * normal();
}

double Rng::exponential(double rate) {
  TSAJS_REQUIRE(rate > 0.0, "exponential() requires rate > 0");
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) {
  TSAJS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli() requires p in [0,1]");
  return uniform() < p;
}

std::uint64_t Rng::derive_seed(std::uint64_t stream_index) noexcept {
  // Mix the generator's own stream with the index through SplitMix64 so that
  // derive_seed(i) != derive_seed(j) produce decorrelated child generators.
  SplitMix64 sm(next_u64() ^ (0x9E3779B97F4A7C15ULL * (stream_index + 1)));
  return sm.next();
}

}  // namespace tsajs
