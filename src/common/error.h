// Error handling primitives for the tsajs libraries.
//
// Library code reports precondition violations and unrecoverable internal
// inconsistencies through exceptions derived from `tsajs::Error`, so that
// callers (tests, the experiment harness, example binaries) can fail a single
// trial without tearing down the whole process.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace tsajs {

/// Base class of all exceptions thrown by this project.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad argument, out-of-range
/// index, infeasible configuration request, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// An internal invariant did not hold. Indicates a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// A requested entity (scheduler name, column, ...) does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// A scheduler result failed the release-mode constraint audit
/// (algo::Scheduler::run_and_validate). Carries one diagnostic string per
/// violated constraint so callers can log the full list, not just the first.
class ValidationError : public Error {
 public:
  ValidationError(const std::string& context,
                  std::vector<std::string> violations);

  /// One human-readable diagnostic per violation, in detection order.
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }

 private:
  static std::string assemble(const std::string& context,
                              const std::vector<std::string>& violations);

  std::vector<std::string> violations_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message);
}  // namespace detail

}  // namespace tsajs

/// Precondition check: throws InvalidArgumentError when `expr` is false.
#define TSAJS_REQUIRE(expr, message)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::tsajs::detail::throw_check_failure("precondition", #expr,        \
                                           __FILE__, __LINE__, message); \
    }                                                                    \
  } while (false)

/// Invariant check: throws InternalError when `expr` is false.
#define TSAJS_CHECK(expr, message)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::tsajs::detail::throw_check_failure("invariant", #expr,          \
                                           __FILE__, __LINE__, message); \
    }                                                                   \
  } while (false)
