#include "common/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace tsajs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TSAJS_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TSAJS_REQUIRE(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  TSAJS_REQUIRE(i < rows_.size(), "row index out of range");
  return rows_[i];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&os, &widths]() {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV output file: " + path);
  write_csv(out);
  if (!out) throw Error("failed writing CSV output file: " + path);
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_ci(double mean, double half_width, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mean << " ± "
     << half_width;
  return os.str();
}

}  // namespace tsajs
