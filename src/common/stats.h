// Streaming statistics and confidence intervals.
//
// The paper reports mean system utility with 95% confidence intervals over
// repeated random drops (Fig. 3). `Accumulator` implements Welford's
// numerically stable online mean/variance; `confidence_interval` applies the
// Student-t quantile for small trial counts.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace tsajs {

/// Welford online accumulator for mean / variance / min / max.
class Accumulator {
 public:
  /// Adds one sample. Throws InternalError on NaN — a single NaN would
  /// irreversibly poison the running sums (and thus a whole report), so it
  /// is rejected before touching any state.
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Mean of the samples; defined as 0.0 when no samples have been added
  /// (rather than NaN), so downstream arithmetic on empty accumulators —
  /// e.g. a dynamic-simulation report whose every epoch was empty — stays
  /// finite.
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : mean_;
  }
  /// Unbiased sample variance. Zero when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean. Zero when fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A symmetric confidence interval [mean - half_width, mean + half_width].
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;

  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower() && x <= upper();
  }
};

/// Two-sided Student-t critical value t_{alpha/2, dof} for the given
/// confidence level (e.g. 0.95). Exact for the tabulated small dofs used by
/// our trial counts; falls back to the normal quantile for large dof.
[[nodiscard]] double student_t_critical(std::size_t dof, double confidence);

/// Confidence interval of the mean from an accumulator. With fewer than two
/// samples the half-width is zero.
[[nodiscard]] ConfidenceInterval confidence_interval(const Accumulator& acc,
                                                     double confidence = 0.95);

/// Quantile (0 <= q <= 1) of a sample, linear interpolation; sorts a copy.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

}  // namespace tsajs
