// Streaming statistics and confidence intervals.
//
// The paper reports mean system utility with 95% confidence intervals over
// repeated random drops (Fig. 3). `Accumulator` implements Welford's
// numerically stable online mean/variance; `confidence_interval` applies the
// Student-t quantile for small trial counts. For the streaming service's
// latency telemetry the accumulator additionally tracks p50/p99 via the P²
// algorithm — constant memory, deterministic, no sample retention.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace tsajs {

/// P² (Jain & Chlamtac, CACM 1985) streaming estimator of one quantile:
/// five markers track (min, the q/2, q, and (1+q)/2 quantiles, max); each
/// new sample shifts marker counts and nudges marker heights by a
/// piecewise-parabolic update. O(1) memory and time per sample, no sample
/// retention, and fully deterministic: the estimate is a pure function of
/// the sample *sequence* (and, after a merge, of the merge tree). Below
/// five samples the estimate is the exact interpolated quantile.
class P2Quantile {
 public:
  /// `q` in [0,1], e.g. 0.5 for the median, 0.99 for p99.
  explicit P2Quantile(double q);

  /// Adds one sample; NaN is rejected (see Accumulator::add).
  void add(double x);

  /// Current estimate; 0.0 when no samples have been added (mirroring
  /// Accumulator::mean's empty-state convention).
  [[nodiscard]] double value() const noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double quantile_level() const noexcept { return q_; }

  /// Merges another estimator (parallel reduction). Both marker sets are
  /// read as piecewise-linear empirical CDFs, summed, and the combined CDF
  /// is inverted at this quantile's desired marker positions — an
  /// approximation (the exact merged quantile is not recoverable from five
  /// markers a side) but a deterministic one: the result depends only on
  /// the two marker states, never on execution order within a side. When
  /// either side still holds raw samples (count <= 5) the merge replays
  /// them exactly.
  void merge(const P2Quantile& other) noexcept;

 private:
  void init_markers() noexcept;

  double q_;
  std::size_t count_ = 0;
  /// Marker heights; for count_ <= 5 the first count_ entries are the
  /// sorted raw samples.
  double heights_[5] = {0, 0, 0, 0, 0};
  /// Actual marker positions (1-based sample ranks).
  double positions_[5] = {0, 0, 0, 0, 0};
  /// Desired marker positions and their per-sample increments.
  double desired_[5] = {0, 0, 0, 0, 0};
  double increments_[5] = {0, 0, 0, 0, 0};
};

/// Welford online accumulator for mean / variance / min / max, plus P²
/// streaming p50/p99 for latency-style telemetry.
class Accumulator {
 public:
  /// Adds one sample. Throws InternalError on NaN — a single NaN would
  /// irreversibly poison the running sums (and thus a whole report), so it
  /// is rejected before touching any state.
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al.). The
  /// quantile sketches merge via P2Quantile::merge (deterministic,
  /// approximate).
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Mean of the samples; defined as 0.0 when no samples have been added
  /// (rather than NaN), so downstream arithmetic on empty accumulators —
  /// e.g. a dynamic-simulation report whose every epoch was empty — stays
  /// finite.
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : mean_;
  }
  /// Unbiased sample variance. Zero when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean. Zero when fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept;
  /// Streaming median estimate (P²; exact below five samples, 0.0 empty).
  [[nodiscard]] double p50() const noexcept { return p50_.value(); }
  /// Streaming 99th-percentile estimate (P²; exact below five samples).
  [[nodiscard]] double p99() const noexcept { return p99_.value(); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  P2Quantile p50_{0.5};
  P2Quantile p99_{0.99};
};

/// A symmetric confidence interval [mean - half_width, mean + half_width].
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;

  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower() && x <= upper();
  }
};

/// Two-sided Student-t critical value t_{alpha/2, dof} for the given
/// confidence level (e.g. 0.95). Exact for the tabulated small dofs used by
/// our trial counts; falls back to the normal quantile for large dof.
[[nodiscard]] double student_t_critical(std::size_t dof, double confidence);

/// Confidence interval of the mean from an accumulator. With fewer than two
/// samples the half-width is zero.
[[nodiscard]] ConfidenceInterval confidence_interval(const Accumulator& acc,
                                                     double confidence = 0.95);

/// Quantile (0 <= q <= 1) of a sample, linear interpolation; sorts a copy.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

}  // namespace tsajs
