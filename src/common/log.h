// Leveled logging for the harness and schedulers.
//
// Lightweight by design: a global level, a single sink (stderr by default,
// redirectable for tests), and stream-style call sites:
//
//   TSAJS_LOG(Info) << "trial " << t << " utility=" << j;
#pragma once

#include <sstream>
#include <string>

namespace tsajs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns a human-readable name ("DEBUG", "INFO", ...).
[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Redirects log output (nullptr restores stderr). Not thread-safe with
/// concurrent logging; intended for test setup.
void set_log_sink(std::ostream* sink) noexcept;

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

}  // namespace detail
}  // namespace tsajs

#define TSAJS_LOG(level)                                              \
  if (!::tsajs::detail::log_enabled(::tsajs::LogLevel::level)) {      \
  } else                                                              \
    ::tsajs::detail::LogMessage(::tsajs::LogLevel::level, __FILE__, __LINE__)
