// Tabular report output.
//
// Every bench binary prints the series a paper figure plots, as an aligned
// ASCII table for the terminal plus an optional CSV file for replotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tsajs {

/// A simple column-oriented table: set headers once, append rows of cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Writes an aligned, boxed ASCII rendering.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-style CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to a file path; throws Error on I/O failure.
  void write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
[[nodiscard]] std::string format_double(double value, int precision = 4);

/// Formats "mean ± half_width" for CI cells.
[[nodiscard]] std::string format_ci(double mean, double half_width,
                                    int precision = 4);

}  // namespace tsajs
