// Dense row-major 2-D and 3-D arrays.
//
// The JTORA model is naturally indexed by (user, server) and (user, server,
// sub-channel); these small wrappers give bounds-checked, cache-friendly
// storage without dragging in a linear-algebra dependency.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace tsajs {

/// Row-major dense matrix indexed as (row, col).
template <typename T>
class Matrix2 {
 public:
  Matrix2() = default;
  Matrix2(std::size_t rows, std::size_t cols, const T& fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    TSAJS_REQUIRE(r < rows_ && c < cols_, "Matrix2 index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    TSAJS_REQUIRE(r < rows_ && c < cols_, "Matrix2 index out of range");
    return data_[r * cols_ + c];
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

  friend bool operator==(const Matrix2&, const Matrix2&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Row-major dense 3-D tensor indexed as (i, j, k).
template <typename T>
class Matrix3 {
 public:
  Matrix3() = default;
  Matrix3(std::size_t dim0, std::size_t dim1, std::size_t dim2,
          const T& fill = T{})
      : dim0_(dim0),
        dim1_(dim1),
        dim2_(dim2),
        data_(dim0 * dim1 * dim2, fill) {}

  [[nodiscard]] std::size_t dim0() const noexcept { return dim0_; }
  [[nodiscard]] std::size_t dim1() const noexcept { return dim1_; }
  [[nodiscard]] std::size_t dim2() const noexcept { return dim2_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] T& operator()(std::size_t i, std::size_t j, std::size_t k) {
    TSAJS_REQUIRE(i < dim0_ && j < dim1_ && k < dim2_,
                  "Matrix3 index out of range");
    return data_[(i * dim1_ + j) * dim2_ + k];
  }
  [[nodiscard]] const T& operator()(std::size_t i, std::size_t j,
                                    std::size_t k) const {
    TSAJS_REQUIRE(i < dim0_ && j < dim1_ && k < dim2_,
                  "Matrix3 index out of range");
    return data_[(i * dim1_ + j) * dim2_ + k];
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  /// Re-dimensions the tensor in place, keeping the underlying allocation
  /// whenever the new extent fits the existing capacity. Element values are
  /// unspecified afterwards; callers are expected to overwrite every entry
  /// (e.g. radio::ChannelModel::regenerate_into re-drawing an epoch's gains
  /// into a tensor that outlives the epoch).
  void reshape(std::size_t dim0, std::size_t dim1, std::size_t dim2) {
    dim0_ = dim0;
    dim1_ = dim1;
    dim2_ = dim2;
    data_.resize(dim0 * dim1 * dim2);
  }

  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

  friend bool operator==(const Matrix3&, const Matrix3&) = default;

 private:
  std::size_t dim0_ = 0;
  std::size_t dim1_ = 0;
  std::size_t dim2_ = 0;
  std::vector<T> data_;
};

}  // namespace tsajs
