#include "common/cli.h"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.h"

namespace tsajs {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {
  add_switch("help", "print this help text and exit");
}

void CliParser::add_flag(const std::string& name,
                         const std::string& description,
                         const std::string& default_value) {
  TSAJS_REQUIRE(!name.empty() && name.rfind("--", 0) != 0,
                "flag names are registered without the leading --");
  TSAJS_REQUIRE(!flags_.contains(name), "duplicate flag: " + name);
  flags_[name] = Flag{description, default_value, std::nullopt, false};
}

void CliParser::add_switch(const std::string& name,
                           const std::string& description) {
  TSAJS_REQUIRE(!flags_.contains(name), "duplicate flag: " + name);
  flags_[name] = Flag{description, "false", std::nullopt, true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw InvalidArgumentError("unknown flag --" + name + "\n" +
                                 help_text());
    }
    Flag& flag = it->second;
    if (flag.is_switch) {
      TSAJS_REQUIRE(!inline_value.has_value(),
                    "switch --" + name + " does not take a value");
      flag.value = "true";
    } else if (inline_value.has_value()) {
      flag.value = std::move(*inline_value);
    } else {
      TSAJS_REQUIRE(i + 1 < argc, "flag --" + name + " expects a value");
      flag.value = argv[++i];
    }
  }
  if (get_bool("help")) {
    std::cout << help_text();
    return false;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw NotFoundError("flag --" + name + " was never registered");
  }
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& flag = find(name);
  return flag.value.value_or(flag.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string text = get_string(name);
  std::size_t consumed = 0;
  std::int64_t result = 0;
  try {
    result = std::stoll(text, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgumentError("--" + name + ": not an integer: " + text);
  }
  TSAJS_REQUIRE(consumed == text.size(),
                "--" + name + ": trailing characters in integer: " + text);
  return result;
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  const std::int64_t value = get_int(name);
  TSAJS_REQUIRE(value >= 0,
                "--" + name + ": must be non-negative, got " +
                    std::to_string(value));
  return static_cast<std::uint64_t>(value);
}

double CliParser::get_double(const std::string& name) const {
  const std::string text = get_string(name);
  std::size_t consumed = 0;
  double result = 0;
  try {
    result = std::stod(text, &consumed);
  } catch (const std::exception&) {
    // std::stod throws out_of_range for values beyond double range.
    throw InvalidArgumentError("--" + name + ": not a number: " + text);
  }
  TSAJS_REQUIRE(consumed == text.size(),
                "--" + name + ": trailing characters in number: " + text);
  // "nan"/"inf" parse successfully but poison every downstream rate,
  // budget, and accumulator; no flag of ours has a meaningful use for them.
  TSAJS_REQUIRE(std::isfinite(result),
                "--" + name + ": must be finite, got " + text);
  return result;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string text = get_string(name);
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  throw InvalidArgumentError("--" + name + ": not a boolean: " + text);
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
  const std::string text = get_string(name);
  std::vector<double> values;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    double value = 0.0;
    try {
      value = std::stod(item);
    } catch (const std::exception&) {
      throw InvalidArgumentError("--" + name + ": not a number: " + item);
    }
    TSAJS_REQUIRE(std::isfinite(value),
                  "--" + name + ": must be finite, got " + item);
    values.push_back(value);
  }
  return values;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << summary_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    if (!flag.is_switch) os << " <value> (default: " << flag.default_value << ')';
    os << "\n      " << flag.description << '\n';
  }
  return os.str();
}

}  // namespace tsajs
