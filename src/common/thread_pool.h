// Fixed-size thread pool used to parallelize independent Monte-Carlo trials.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tsajs {

/// A simple FIFO thread pool. Tasks must not throw through the pool boundary;
/// use `submit` to capture exceptions in the returned future.
class ThreadPool {
 public:
  /// `num_threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

  /// Enqueues a callable; the future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for *all* tasks
  /// to finish. If any tasks threw, the exception of the lowest-index
  /// failing task is rethrown — a deterministic choice, independent of the
  /// temporal order in which workers hit their errors.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace tsajs
