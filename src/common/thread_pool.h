// Fixed-size thread pool used to parallelize independent Monte-Carlo trials.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tsajs {

/// A simple FIFO thread pool. Tasks must not throw through the pool boundary;
/// use `submit` to capture exceptions in the returned future.
class ThreadPool {
 public:
  /// `num_threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

  /// Enqueues a callable; the future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for *all* tasks
  /// to finish. If any calls threw, the exception of the lowest-index
  /// failure is rethrown — a deterministic choice, independent of the
  /// temporal order in which workers hit their errors.
  ///
  /// `grain` sets the chunk size: one pool task covers `grain` consecutive
  /// indices, run in ascending order. The default (1) submits one task per
  /// index — right for heavy bodies like a shard solve; a larger grain
  /// amortizes the queue/future overhead when the per-index body is tiny
  /// and the index count is large (see BM_ParallelForGrain). `grain == 0`
  /// picks an even split over the workers automatically. Within a chunk a
  /// throwing index skips the chunk's remaining indices (chunks are
  /// all-or-nothing past the failure); with the default grain of 1 every
  /// index runs regardless, as before.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace tsajs
