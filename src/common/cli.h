// Minimal command-line flag parser for the bench and example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches,
// with typed accessors, defaults, and an auto-generated `--help` text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tsajs {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help.
  explicit CliParser(std::string program_summary);

  /// Registers a flag. `description` appears in --help.
  void add_flag(const std::string& name, const std::string& description,
                const std::string& default_value);

  /// Registers a boolean switch (present => true).
  void add_switch(const std::string& name, const std::string& description);

  /// Parses argv. Returns false (after printing help) when --help was given.
  /// Throws InvalidArgumentError on unknown flags or malformed input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  /// Like get_int but rejects negative values; for counts (threads, trials,
  /// chain lengths) that would otherwise wrap when cast to unsigned.
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Parses a comma-separated list of doubles, e.g. "1000,2000,3000".
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name) const;

  /// Positional arguments (anything not starting with --).
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string help_text() const;

 private:
  struct Flag {
    std::string description;
    std::string default_value;
    std::optional<std::string> value;
    bool is_switch = false;
  };

  const Flag& find(const std::string& name) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tsajs
