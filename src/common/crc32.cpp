#include "common/crc32.h"

#include <array>

namespace tsajs {

namespace {

std::array<std::uint32_t, 256> build_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = build_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace tsajs
