#include "common/thread_pool.h"

#include <algorithm>

namespace tsajs {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    // Auto grain: an even split across the workers. Fine for uniform tiny
    // bodies; callers with skewed work should pick a smaller grain.
    grain = (n + num_threads() - 1) / num_threads();
  }
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const std::size_t begin = chunk * grain;
    const std::size_t end = std::min(n, begin + grain);
    futures.push_back(submit([&fn, begin, end] {
      // Ascending within the chunk, so the chunk's future carries its
      // lowest-index failure.
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Drain every future before rethrowing: all tasks must have finished when
  // parallel_for returns (callers' captured state dies with the frame). The
  // chunk-ordered scan makes the propagated exception the *lowest-index*
  // failure among the executed calls, deterministically, no matter which
  // worker threw first on the wall clock.
  std::exception_ptr lowest_index_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!lowest_index_error) lowest_index_error = std::current_exception();
    }
  }
  if (lowest_index_error) std::rethrow_exception(lowest_index_error);
}

}  // namespace tsajs
