// Wall-clock stopwatch used for the runtime experiment (paper Fig. 8).
#pragma once

#include <chrono>

namespace tsajs {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  /// Restarts the timer.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tsajs
