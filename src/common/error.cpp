#include "common/error.h"

#include <sstream>

namespace tsajs {

ValidationError::ValidationError(const std::string& context,
                                 std::vector<std::string> violations)
    : Error(assemble(context, violations)),
      violations_(std::move(violations)) {}

std::string ValidationError::assemble(
    const std::string& context, const std::vector<std::string>& violations) {
  std::ostringstream os;
  os << "constraint audit failed";
  if (!context.empty()) os << " [" << context << ']';
  os << ": " << violations.size() << " violation"
     << (violations.size() == 1 ? "" : "s");
  for (const auto& violation : violations) os << "\n  - " << violation;
  return os.str();
}

}  // namespace tsajs

namespace tsajs::detail {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  if (std::string(kind) == "precondition") {
    throw InvalidArgumentError(os.str());
  }
  throw InternalError(os.str());
}

}  // namespace tsajs::detail
