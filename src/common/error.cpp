#include "common/error.h"

#include <sstream>

namespace tsajs::detail {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  if (std::string(kind) == "precondition") {
    throw InvalidArgumentError(os.str());
  }
  throw InternalError(os.str());
}

}  // namespace tsajs::detail
