#include "common/watchdog.h"

#include <algorithm>

namespace tsajs {

Watchdog::Watchdog() : thread_([this] { run(); }) {}

Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t Watchdog::arm(CancelToken& token, double seconds) {
  const auto now = std::chrono::steady_clock::now();
  const auto delay = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::max(0.0, seconds)));
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    entries_.push_back(Entry{id, now + delay, &token});
  }
  cv_.notify_all();
  return id;
}

void Watchdog::disarm(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (entries_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !entries_.empty(); });
      continue;
    }
    const auto next = std::min_element(entries_.begin(), entries_.end(),
                                       [](const Entry& a, const Entry& b) {
                                         return a.deadline < b.deadline;
                                       })
                          ->deadline;
    if (std::chrono::steady_clock::now() >= next) {
      // Fire every expired entry; fired entries stay until disarm() so the
      // caller's unconditional disarm stays valid.
      const auto now = std::chrono::steady_clock::now();
      for (const Entry& entry : entries_) {
        if (entry.deadline <= now) entry.token->cancel();
      }
      // Expired entries keep the deadline in the past; wait for a change
      // (new arm, disarm, stop) instead of spinning on them.
      cv_.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }
    cv_.wait_until(lock, next);
  }
}

}  // namespace tsajs
